"""Observability configuration: one place for every telemetry switch.

Every ``REPRO_*`` environment variable is registered and read through
this module so spelling, ownership, and defaults live in exactly one
place (the ``RPR004`` lint rule in :mod:`repro.analysis.lint` enforces
registration):

* ``REPRO_OBS`` — the observability kill-switch. ``REPRO_OBS=0``
  disables span tracing and metric recording everywhere (default
  tracers come up disabled, :func:`~repro.obs.metrics.record_kernel_counters`
  no-ops), so the engine runs the exact seed hot path. The kernel
  microbenchmark (:func:`repro.bench.kernel_microbench.measure_obs_overhead`)
  asserts that this disabled path stays within measurement noise of the
  untraced engine.
* ``REPRO_NATIVE_KERNEL`` — the compiled-C expansion tier switch
  (``0`` pins the pure-NumPy kernel). Owned by
  :mod:`repro.parallel._native`; re-exposed here so callers configuring
  telemetry and kernel tiers read one module.
* ``REPRO_TRACE`` — when set to a file path, a process-global tracer is
  installed at benchmark-harness import and the collected spans are
  written there as Chrome trace-event JSON at interpreter exit, so any
  ``benchmarks/bench_*.py`` run can dump a trace without code changes.
* ``REPRO_SANITIZE`` — comma-separated sanitizer selection
  (``address``, ``undefined``) for the compiled kernel tier; owned by
  :mod:`repro.parallel._native`, driven by :mod:`repro.analysis.sanitize`.
* ``REPRO_DATASET_CACHE`` — dataset cache directory override for the
  benchmark harness; owned by :mod:`repro.bench.datasets`.
* ``REPRO_WHOLE_LEVEL`` — ``0`` pins the classic per-step bottom-up
  loop instead of the fused whole-level fast path.
* ``REPRO_POOL_PERSIST`` — ``0`` disables the persistent (warm) process
  pool; each ``ProcessPoolBackend`` then owns a fresh pool.
* ``REPRO_POOL_WORKERS`` — worker-count override for the persistent
  process pool.
* ``REPRO_SLOW_MS`` — slow-query threshold (milliseconds) for the query
  flight recorder (:mod:`repro.obs.flight`): a completed query slower
  than this is promoted to the slow-query log with its full Chrome
  trace persisted. ``0`` disables the slow log.
* ``REPRO_FLIGHT_N`` — ring-buffer capacity of the flight recorder
  (how many recent :class:`~repro.obs.flight.QueryRecord`\\ s are kept).
  ``0`` disables flight recording entirely.
* ``REPRO_LOCK_WITNESS`` — ``1`` arms the runtime lock witness
  (:mod:`repro.obs.locks`): every lock built through the factory records
  acquisition order, held-sets, and held-across-fork events for the
  concurrency analyzer's soundness check. Default off (plain locks).
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass
from typing import Optional

#: Kill-switch for all span tracing and metric recording.
ENV_OBS = "REPRO_OBS"

#: Compiled-kernel switch (must match ``repro.parallel._native.ENV_FLAG``;
#: a test pins the equality).
ENV_NATIVE_KERNEL = "REPRO_NATIVE_KERNEL"

#: Chrome-trace output path for benchmark runs (empty/unset = no trace).
ENV_TRACE = "REPRO_TRACE"

#: Sanitizer selection for the compiled kernel tier, e.g.
#: ``REPRO_SANITIZE=address,undefined``. Owned by
#: :mod:`repro.parallel._native` (``ENV_SANITIZE``; a test pins the
#: equality); orchestrated by :mod:`repro.analysis.sanitize`.
ENV_SANITIZE = "REPRO_SANITIZE"

#: Dataset download/cache directory override for the benchmark harness.
#: Owned by :mod:`repro.bench.datasets` (``CACHE_ENV_VAR``; a test pins
#: the equality).
ENV_DATASET_CACHE = "REPRO_DATASET_CACHE"

#: Whole-level fast-path switch: ``REPRO_WHOLE_LEVEL=0`` pins the
#: classic per-step bottom-up loop (enqueue / identify / expand as
#: separate Python phases) even for backends that implement
#: ``run_level``. Read by :class:`repro.core.bottom_up.BottomUpSearch`.
ENV_WHOLE_LEVEL = "REPRO_WHOLE_LEVEL"

#: Persistent worker-pool switch: ``REPRO_POOL_PERSIST=0`` makes
#: :class:`repro.parallel.processes.ProcessPoolBackend` spawn a fresh
#: pool per backend instance (the pre-warm-pool behavior) instead of
#: reusing the process-wide pinned pool across queries.
ENV_POOL_PERSIST = "REPRO_POOL_PERSIST"

#: Worker-count override for the persistent pool, e.g.
#: ``REPRO_POOL_WORKERS=8``. Unset/empty defers to the backend's
#: ``n_workers`` argument.
ENV_POOL_WORKERS = "REPRO_POOL_WORKERS"

#: Slow-query threshold in milliseconds for the query flight recorder
#: (:mod:`repro.obs.flight`). Queries at or above the threshold land in
#: the slow-query log with their full Chrome trace persisted; ``0``
#: disables the slow log. Unset defaults to
#: :data:`DEFAULT_SLOW_QUERY_MS`.
ENV_SLOW_MS = "REPRO_SLOW_MS"

#: Flight-recorder ring capacity: how many recent completed queries the
#: recorder keeps (:class:`repro.obs.flight.FlightRecorder`). ``0``
#: disables flight recording; unset defaults to
#: :data:`DEFAULT_FLIGHT_RECORDS`.
ENV_FLIGHT_N = "REPRO_FLIGHT_N"

#: Default ``REPRO_SLOW_MS`` when the variable is unset or unparsable.
DEFAULT_SLOW_QUERY_MS = 500.0

#: Default ``REPRO_FLIGHT_N`` when the variable is unset or unparsable.
DEFAULT_FLIGHT_RECORDS = 128

#: Opt-in gate for the out-of-core store smoke
#: (``tests/test_store_outofcore.py``): ``REPRO_OOC_SMOKE=1`` runs the
#: rlimit-capped subprocess test the dedicated CI job exercises; the
#: tier-1 suite skips it.
ENV_OOC_SMOKE = "REPRO_OOC_SMOKE"

#: Runtime lock witness (:mod:`repro.obs.locks`):
#: ``REPRO_LOCK_WITNESS=1`` makes the lock factory hand out instrumented
#: locks that record per-thread acquisition order, held-sets, and
#: locks held across ``os.fork`` into the process-wide
#: :class:`~repro.obs.locks.LockWitness`. Unset/``0`` (the default)
#: returns plain ``threading.Lock`` objects — a parity test pins the
#: exact type so the serving path stays byte-identical. Observed
#: ordering edges are cross-checked against the static lock-order graph
#: by :mod:`repro.analysis.concurrency`.
ENV_LOCK_WITNESS = "REPRO_LOCK_WITNESS"


def obs_enabled() -> bool:
    """True unless ``REPRO_OBS=0`` vetoes telemetry."""
    return os.environ.get(ENV_OBS, "1") != "0"


def lock_witness_enabled() -> bool:
    """True only when ``REPRO_LOCK_WITNESS=1`` opts into witnessed locks.

    Opt-in (default off), unlike the other switches: witnessed locks pay
    a dict update per acquisition, so they run in the dedicated CI job
    and in ``repro check``'s dynamic exercise, never in serving.
    """
    return os.environ.get(ENV_LOCK_WITNESS, "0") == "1"


def native_kernel_enabled() -> bool:
    """True unless ``REPRO_NATIVE_KERNEL=0`` pins the NumPy kernel."""
    return os.environ.get(ENV_NATIVE_KERNEL, "1") != "0"


def trace_path() -> Optional[str]:
    """The ``REPRO_TRACE`` output path, or ``None``."""
    return os.environ.get(ENV_TRACE) or None


def sanitize_value() -> str:
    """The raw ``REPRO_SANITIZE`` selection string (empty when unset)."""
    return os.environ.get(ENV_SANITIZE, "")


def dataset_cache_dir() -> Optional[str]:
    """The ``REPRO_DATASET_CACHE`` directory override, or ``None``."""
    return os.environ.get(ENV_DATASET_CACHE) or None


def whole_level_enabled() -> bool:
    """True unless ``REPRO_WHOLE_LEVEL=0`` pins the classic loop."""
    return os.environ.get(ENV_WHOLE_LEVEL, "1") != "0"


def pool_persist_enabled() -> bool:
    """True unless ``REPRO_POOL_PERSIST=0`` disables pool reuse."""
    return os.environ.get(ENV_POOL_PERSIST, "1") != "0"


def pool_workers_override() -> Optional[int]:
    """The ``REPRO_POOL_WORKERS`` worker count, or ``None``.

    Unparsable or non-positive values are ignored (``None``) rather
    than raised — a stray environment variable must not break queries.
    """
    raw = os.environ.get(ENV_POOL_WORKERS, "")
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def slow_query_threshold_ms() -> float:
    """The ``REPRO_SLOW_MS`` slow-query threshold in milliseconds.

    ``0`` disables the slow-query log. Unparsable or negative values
    fall back to :data:`DEFAULT_SLOW_QUERY_MS` — a stray environment
    variable must not break queries.
    """
    raw = os.environ.get(ENV_SLOW_MS, "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SLOW_QUERY_MS
    return value if value >= 0.0 else DEFAULT_SLOW_QUERY_MS


def flight_recorder_size() -> int:
    """The ``REPRO_FLIGHT_N`` flight-recorder ring capacity.

    ``0`` disables flight recording. Unparsable or negative values fall
    back to :data:`DEFAULT_FLIGHT_RECORDS`.
    """
    raw = os.environ.get(ENV_FLIGHT_N, "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_FLIGHT_RECORDS
    return value if value >= 0 else DEFAULT_FLIGHT_RECORDS


@dataclass(frozen=True)
class ObsConfig:
    """A snapshot of every observability switch.

    Attributes:
        enabled: span tracing / metric recording allowed (``REPRO_OBS``).
        native_kernel: compiled expansion tier allowed
            (``REPRO_NATIVE_KERNEL``).
        trace_path: Chrome-trace dump path for this run (``REPRO_TRACE``).
    """

    enabled: bool
    native_kernel: bool
    trace_path: Optional[str]

    @classmethod
    def from_env(cls) -> "ObsConfig":
        return cls(
            enabled=obs_enabled(),
            native_kernel=native_kernel_enabled(),
            trace_path=trace_path(),
        )


def maybe_install_env_tracer() -> "Optional[object]":
    """Install a process-global tracer when ``REPRO_TRACE`` is set.

    Idempotent: repeated calls return the already-installed tracer. The
    collected spans are written to the configured path as Chrome
    trace-event JSON when the interpreter exits. Returns the installed
    :class:`~repro.obs.tracing.Tracer`, or ``None`` when no trace was
    requested.
    """
    path = trace_path()
    if not path:
        return None
    from . import tracing

    installed = tracing.get_global_tracer()
    if installed.enabled:
        return installed
    tracer = tracing.Tracer(enabled=True)
    tracing.install_global_tracer(tracer)

    def _dump(tracer: "tracing.Tracer" = tracer, path: str = path) -> None:
        try:
            tracer.write_chrome_trace(path)
        except OSError:  # pragma: no cover - unwritable path at exit
            pass

    atexit.register(_dump)
    return tracer
