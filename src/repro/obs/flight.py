"""The query flight recorder: the last N completed queries, always on.

Spans answer "where did *this traced run* spend its time", but only if
someone attached a tracer before the query ran. In a serving process a
slow or failed query leaves no artifact — by the time an operator looks,
the evidence is gone. The flight recorder fixes that: a lock-protected
ring buffer of the last N completed :class:`QueryRecord`\\ s (query
text, normalized keywords, the per-phase span tree, kernel counters,
level profiles, backend tier, outcome/error), recorded for *every*
query at near-zero cost, plus a slow-query log that persists the full
Chrome trace of any query at or over the ``REPRO_SLOW_MS`` threshold.

Wiring:

* :class:`~repro.service.SearchService` builds a recorder from the env
  knobs (``REPRO_FLIGHT_N`` capacity, ``REPRO_SLOW_MS`` threshold) and
  hands it to its engine; ``GET /debug/queries`` serves the ring and
  ``GET /debug/queries/<id>`` one record's full trace.
* :class:`~repro.core.engine.KeywordSearchEngine` calls
  :meth:`FlightRecorder.begin` per query. When the engine's tracer is
  disabled (the common serving configuration), the recording brings its
  *own* per-query enabled tracer, so the record still carries a span
  tree — including worker-side spans stitched by
  :mod:`repro.obs.proc` for the process tier.
* ``REPRO_OBS=0`` vetoes everything: :attr:`FlightRecorder.enabled`
  re-checks the kill-switch per query, so the disabled engine path is
  byte-identical to the untraced seed (one attribute load and one
  branch; a parity test pins this).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from .config import flight_recorder_size, obs_enabled, slow_query_threshold_ms
from .locks import make_lock, register_lock_owner
from .tracing import Span, Tracer

#: Slow-query log capacity (independent of the ring: a burst of fast
#: queries must not evict the evidence of the last slow one).
SLOW_LOG_CAPACITY = 32


def _span_as_dict(span: Span) -> Dict[str, object]:
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "tid": span.tid,
        "thread_name": span.thread_name,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "attrs": dict(span.attrs),
    }


def spans_to_chrome_trace(
    spans: List[Dict[str, object]]
) -> Dict[str, object]:
    """Chrome trace-event JSON for one record's serialized span list.

    Same event shape as :meth:`repro.obs.tracing.Tracer.to_chrome_trace`
    (passes :func:`~repro.obs.tracing.validate_chrome_trace`), built
    from the per-query slice the flight recorder kept.
    """
    pid = os.getpid()
    events: List[Dict[str, object]] = []
    threads: Dict[int, str] = {}
    for span in spans:
        tid = int(span.get("tid", 0))  # type: ignore[arg-type]
        threads.setdefault(tid, str(span.get("thread_name", "")))
        args = dict(span.get("attrs") or {})  # type: ignore[arg-type]
        args["span_id"] = span.get("span_id", 0)
        args["parent_id"] = span.get("parent_id", 0)
        events.append(
            {
                "name": span.get("name", ""),
                "cat": "repro",
                "ph": "X",
                "ts": int(span.get("start_ns", 0)) / 1e3,  # type: ignore[arg-type]
                "dur": int(span.get("duration_ns", 0)) / 1e3,  # type: ignore[arg-type]
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for tid, thread_name in sorted(threads.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def query_spans(tracer: Tracer, query_span: Span) -> List[Span]:
    """The finished spans belonging to one query.

    A service engine may share one tracer across concurrent queries, so
    membership is decided by ancestry, not by arrival order: the result
    is ``query_span`` plus every finished span whose parent chain
    reaches it.
    """
    spans = tracer.finished_spans()
    children: Dict[int, List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    selected: List[Span] = []
    frontier = [query_span.span_id]
    seen = {query_span.span_id}
    for span in spans:
        if span.span_id == query_span.span_id:
            selected.append(span)
    while frontier:
        span_id = frontier.pop()
        for child in children.get(span_id, ()):
            if child.span_id in seen:
                continue
            seen.add(child.span_id)
            selected.append(child)
            frontier.append(child.span_id)
    selected.sort(key=lambda s: (s.start_ns, s.span_id))
    return selected


@dataclass
class QueryRecord:
    """One completed (or failed) query, as kept by the flight recorder.

    Attributes:
        query_id: recorder-unique, monotonically increasing id (the
            ``/debug/queries/<id>`` key).
        query: the raw query text.
        keywords: normalized terms that ran (column order).
        dropped_terms: normalized terms with empty source sets.
        backend: the expansion backend tier (``vectorized``,
            ``processes[4]``, ...).
        outcome: ``"ok"`` or ``"error"``.
        error: the error message (empty on success).
        error_phase: which phase failed (empty on success).
        started_unix: wall-clock begin time (for operators; never used
            for durations).
        duration_ms: total query wall time from the span/perf-counter
            window.
        phases: ``PhaseTimer`` milliseconds per phase.
        counters: summed kernel work counters over the query's levels.
        levels: per-BFS-level expansion accounting (one dict per level).
        depth / n_central_nodes / n_answers / terminated: stage-one and
            ranking outcomes.
        slow: whether ``duration_ms`` met the slow-query threshold.
        spans: the per-query span tree, serialized.
        trace: the full Chrome trace payload — persisted eagerly for
            slow queries, built on demand otherwise.
    """

    query_id: int
    query: str
    keywords: Tuple[str, ...] = ()
    dropped_terms: Tuple[str, ...] = ()
    backend: str = ""
    outcome: str = "ok"
    error: str = ""
    error_phase: str = ""
    started_unix: float = 0.0
    duration_ms: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    levels: List[Dict[str, int]] = field(default_factory=list)
    depth: int = 0
    n_central_nodes: int = 0
    n_answers: int = 0
    terminated: str = ""
    slow: bool = False
    spans: List[Dict[str, object]] = field(default_factory=list)
    trace: Optional[Dict[str, object]] = None

    def summary(self) -> Dict[str, object]:
        """The ``/debug/queries`` listing row."""
        return {
            "query_id": self.query_id,
            "query": self.query,
            "keywords": list(self.keywords),
            "backend": self.backend,
            "outcome": self.outcome,
            "error": self.error,
            "duration_ms": self.duration_ms,
            "depth": self.depth,
            "n_answers": self.n_answers,
            "slow": self.slow,
            "started_unix": self.started_unix,
        }

    def as_dict(self, include_trace: bool = True) -> Dict[str, object]:
        """The full ``/debug/queries/<id>`` payload."""
        payload: Dict[str, object] = dict(
            self.summary(),
            dropped_terms=list(self.dropped_terms),
            error_phase=self.error_phase,
            phases=dict(self.phases),
            counters=dict(self.counters),
            levels=[dict(level) for level in self.levels],
            n_central_nodes=self.n_central_nodes,
            terminated=self.terminated,
            spans=[dict(span) for span in self.spans],
        )
        if include_trace:
            payload["trace"] = self.chrome_trace()
        return payload

    def chrome_trace(self) -> Dict[str, object]:
        """This query's Chrome trace (persisted copy or rebuilt)."""
        if self.trace is not None:
            return self.trace
        return spans_to_chrome_trace(self.spans)


class QueryRecording:
    """An in-flight query being recorded; created by
    :meth:`FlightRecorder.begin`, closed by :meth:`complete` or
    :meth:`fail`.

    When the engine's own tracer is disabled the recording owns a fresh
    enabled :class:`~repro.obs.tracing.Tracer` (:attr:`tracer`) so the
    record still captures a span tree; when the engine tracer is
    already enabled, the engine keeps it and passes it to
    :meth:`complete` for the per-query slice.
    """

    def __init__(self, recorder: "FlightRecorder", record: QueryRecord) -> None:
        self._recorder = recorder
        self.record = record
        self.tracer = Tracer(enabled=True)
        self._start_ns = time.perf_counter_ns()

    @property
    def query_id(self) -> int:
        return self.record.query_id

    def _elapsed_ms(self) -> float:
        return (time.perf_counter_ns() - self._start_ns) / 1e6

    def complete(
        self,
        result: Any,
        query_span: Optional[Span] = None,
        tracer: Optional[Tracer] = None,
    ) -> QueryRecord:
        """Close the recording with a successful
        :class:`~repro.core.results.SearchResult`."""
        record = self.record
        record.outcome = "ok"
        record.depth = int(result.depth)
        record.n_central_nodes = int(result.n_central_nodes)
        record.n_answers = len(result.answers)
        record.terminated = str(result.terminated)
        record.phases = result.timer.milliseconds()
        record.duration_ms = record.phases.get("total", self._elapsed_ms())
        counters: Dict[str, int] = {}
        for profile in result.level_profile:
            attrs = profile.as_span_attributes()
            level_row = {"level": int(profile.level)}
            level_row.update({k: int(v) for k, v in attrs.items()})
            record.levels.append(level_row)
            for key, value in attrs.items():
                counters[key] = counters.get(key, 0) + int(value)
        record.counters = counters
        self._capture_spans(query_span, tracer)
        self._recorder._commit(record)
        return record

    def fail(
        self,
        error: BaseException,
        phase: str = "",
        query_span: Optional[Span] = None,
        tracer: Optional[Tracer] = None,
    ) -> QueryRecord:
        """Close the recording with an error outcome."""
        record = self.record
        record.outcome = "error"
        record.error = str(error)
        record.error_phase = phase
        record.duration_ms = self._elapsed_ms()
        self._capture_spans(query_span, tracer)
        self._recorder._commit(record)
        return record

    def _capture_spans(
        self, query_span: Optional[Span], tracer: Optional[Tracer]
    ) -> None:
        tracer = tracer if tracer is not None else self.tracer
        if not tracer.enabled:
            return
        if query_span is not None:
            spans = query_spans(tracer, query_span)
        elif tracer is self.tracer:
            spans = tracer.finished_spans()
        else:  # shared tracer but no anchor: no safe per-query slice
            spans = []
        self.record.spans = [_span_as_dict(span) for span in spans]


class FlightRecorder:
    """Lock-protected ring buffer of recent queries plus a slow log.

    Args:
        max_records: ring capacity; ``None`` reads ``REPRO_FLIGHT_N``
            (default 128). ``0`` disables recording.
        slow_ms: slow-query threshold in milliseconds; ``None`` reads
            ``REPRO_SLOW_MS`` (default 500). ``0`` disables the slow
            log.
        slow_trace_dir: when set, every slow query's Chrome trace is
            also written there as ``slow_query_<id>.trace.json``.
    """

    def __init__(
        self,
        max_records: Optional[int] = None,
        slow_ms: Optional[float] = None,
        slow_trace_dir: Optional[str] = None,
    ) -> None:
        self.max_records = (
            flight_recorder_size() if max_records is None else int(max_records)
        )
        self.slow_ms = (
            slow_query_threshold_ms() if slow_ms is None else float(slow_ms)
        )
        self.slow_trace_dir = slow_trace_dir
        self._lock = make_lock("obs.flight.FlightRecorder._lock")
        register_lock_owner(self, "_lock")
        self._ids = itertools.count(1)
        self._ring: Deque[QueryRecord] = deque(maxlen=max(self.max_records, 1))
        self._slow: Deque[QueryRecord] = deque(maxlen=SLOW_LOG_CAPACITY)
        self._completed = 0

    @classmethod
    def from_env(cls, slow_trace_dir: Optional[str] = None) -> "FlightRecorder":
        """A recorder configured by ``REPRO_FLIGHT_N``/``REPRO_SLOW_MS``."""
        return cls(slow_trace_dir=slow_trace_dir)

    @property
    def enabled(self) -> bool:
        """Recording allowed right now.

        Re-checks the ``REPRO_OBS`` kill-switch on every call (one env
        lookup), so flipping the switch needs no recorder rebuild and
        the disabled engine path stays the exact seed hot path.
        """
        return self.max_records > 0 and obs_enabled()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(
        self,
        query: str,
        keywords: Tuple[str, ...] = (),
        dropped_terms: Tuple[str, ...] = (),
        backend: str = "",
    ) -> QueryRecording:
        """Open a recording for one query (allocates its id)."""
        record = QueryRecord(
            query_id=next(self._ids),
            query=query,
            keywords=tuple(keywords),
            dropped_terms=tuple(dropped_terms),
            backend=backend,
            started_unix=time.time(),  # noqa: RPR008 - operator-facing timestamp, never a duration
        )
        return QueryRecording(self, record)

    def _commit(self, record: QueryRecord) -> None:
        if record.duration_ms >= self.slow_ms > 0.0:
            record.slow = True
            record.trace = record.chrome_trace()
        with self._lock:
            self._ring.append(record)
            if record.slow:
                self._slow.append(record)
            self._completed += 1
        if record.slow and self.slow_trace_dir:
            self._write_slow_trace(record)

    def _write_slow_trace(self, record: QueryRecord) -> None:
        import json

        path = os.path.join(
            self.slow_trace_dir or ".",
            f"slow_query_{record.query_id}.trace.json",
        )
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(record.chrome_trace(), handle, indent=1)
                handle.write("\n")
        except OSError:  # pragma: no cover - unwritable trace dir
            pass

    # ------------------------------------------------------------------
    # Introspection (the /debug/queries payloads)
    # ------------------------------------------------------------------
    def recent(self, limit: Optional[int] = None) -> List[QueryRecord]:
        """Most recent completed queries, newest first."""
        with self._lock:
            records = list(self._ring)
        records.reverse()
        return records[:limit] if limit is not None else records

    def slow_queries(self) -> List[QueryRecord]:
        """The slow-query log, newest first."""
        with self._lock:
            return list(reversed(self._slow))

    def get(self, query_id: int) -> Optional[QueryRecord]:
        """Look up one record still held by the ring or slow log."""
        with self._lock:
            for record in self._ring:
                if record.query_id == query_id:
                    return record
            for record in self._slow:
                if record.query_id == query_id:
                    return record
        return None

    @property
    def completed(self) -> int:
        """Total queries committed since construction (ring evictions
        included) — the concurrency hammer asserts exact counts here."""
        with self._lock:
            return self._completed

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow.clear()

    def debug_payload(self, limit: int = 50) -> Dict[str, object]:
        """The ``GET /debug/queries`` body."""
        return {
            "capacity": self.max_records,
            "completed": self.completed,
            "slow_ms": self.slow_ms,
            "recent": [record.summary() for record in self.recent(limit)],
            "slow": [record.summary() for record in self.slow_queries()],
        }

    def phase_breakdown_ms(self) -> Dict[str, float]:
        """Mean milliseconds per phase over the ring's successful
        queries (the load bench's per-phase latency breakdown)."""
        totals: Dict[str, float] = {}
        count = 0
        for record in self.recent():
            if record.outcome != "ok" or not record.phases:
                continue
            count += 1
            for phase, ms in record.phases.items():
                totals[phase] = totals.get(phase, 0.0) + ms
        if not count:
            return {}
        return {phase: total / count for phase, total in sorted(totals.items())}
