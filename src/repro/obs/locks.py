"""Witnessed lock factory and fork-safety plumbing.

Every lock in the serving shell (tracer, metrics, flight recorder,
service stats, the striped ablation locks) is constructed through
:func:`make_lock` with a stable dotted name — the same name the static
concurrency analyzer (:mod:`repro.analysis.concurrency`) derives for it
from the AST. That shared naming is what makes the two layers
cross-checkable:

* With ``REPRO_LOCK_WITNESS`` unset (the default), :func:`make_lock`
  returns a plain ``threading.Lock`` — byte-identical behavior to the
  pre-witness code, pinned by a parity test.
* With ``REPRO_LOCK_WITNESS=1``, it returns a :class:`_WitnessedLock`
  that records, into the process-wide :class:`LockWitness`, every
  acquisition: per-thread held-sets, the **lock-order edges** actually
  exercised (lock A held while acquiring lock B), and exact acquisition
  counts. :func:`repro.analysis.concurrency.verify_witness` then demands
  that every observed edge was predicted by the static lock-order graph
  (the soundness direction: the dynamic run may see fewer orderings than
  the static over-approximation, never more).

Fork safety (the gap this PR closes): :class:`WorkerPool` forks workers
while service/metrics threads may be mid-critical-section. A child
forked at that instant inherits a locked mutex with no owner — the
classic post-fork deadlock, invisible to TSan because it only
instruments the C kernel. Two mechanisms here:

* ``os.register_at_fork(before=...)`` — when the witness is active, any
  lock held by *any* thread at fork time is recorded as a
  ``held-at-fork`` event (:meth:`LockWitness.held_at_fork_events`).
* ``os.register_at_fork(after_in_child=...)`` — every lock owner
  registered via :func:`register_lock_owner` (the flight recorder, the
  metrics registry and its instruments, tracers) gets a **fresh** lock
  in the child, and module-level callbacks registered via
  :func:`register_fork_callback` run (the global-tracer lock), so a pool
  worker can never block on a mutex its parent's sibling thread held.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Callable, Dict, Iterator, List, Tuple

from .config import lock_witness_enabled

__all__ = [
    "LockWitness",
    "get_witness",
    "reset_witness",
    "make_lock",
    "make_rlock",
    "make_condition",
    "make_striped_locks",
    "register_lock_owner",
    "register_fork_callback",
]


class LockWitness:
    """Process-wide record of witnessed lock activity.

    All bookkeeping happens under one *plain* (unwitnessed) mutex so the
    witness can never feed edges about itself into the graph it is
    checking. Held-sets are tracked per thread in acquisition order.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        # thread ident -> stack of lock names currently held, in
        # acquisition order (a name appears once per outstanding acquire).
        self._held: Dict[int, List[str]] = {}
        # (outer, inner) -> times the ordering was observed.
        self._edges: Dict[Tuple[str, str], int] = {}
        self._acquisitions: Dict[str, int] = {}
        # Fork events: each is the sorted tuple of lock names held by
        # any thread at the instant os.fork ran in this process.
        self._fork_events: List[Tuple[str, ...]] = []
        self._max_held = 0

    # ------------------------------------------------------------------
    # Recording (called by _WitnessedLock)
    # ------------------------------------------------------------------
    def note_acquired(self, name: str) -> None:
        ident = threading.get_ident()
        with self._mutex:
            stack = self._held.setdefault(ident, [])
            for outer in stack:
                if outer != name:  # re-entry is not an ordering edge
                    key = (outer, name)
                    self._edges[key] = self._edges.get(key, 0) + 1
            stack.append(name)
            self._acquisitions[name] = self._acquisitions.get(name, 0) + 1
            self._max_held = max(self._max_held, len(stack))

    def note_released(self, name: str) -> None:
        ident = threading.get_ident()
        with self._mutex:
            stack = self._held.get(ident)
            if stack:
                # Remove the innermost outstanding acquire of this name.
                for index in range(len(stack) - 1, -1, -1):
                    if stack[index] == name:
                        del stack[index]
                        break
                if not stack:
                    del self._held[ident]

    def note_fork(self) -> None:
        """Record the locks held (by anyone) at an ``os.fork``."""
        with self._mutex:
            held = sorted(
                {name for stack in self._held.values() for name in stack}
            )
            if held:
                self._fork_events.append(tuple(held))

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def edges(self) -> Dict[Tuple[str, str], int]:
        """Observed lock-order edges ``(outer, inner) -> count``."""
        with self._mutex:
            return dict(self._edges)

    def acquisition_count(self, name: str) -> int:
        with self._mutex:
            return self._acquisitions.get(name, 0)

    def acquisitions(self) -> Dict[str, int]:
        with self._mutex:
            return dict(self._acquisitions)

    def held_now(self) -> Dict[int, Tuple[str, ...]]:
        """Currently held witnessed locks, per thread ident."""
        with self._mutex:
            return {
                ident: tuple(stack) for ident, stack in self._held.items()
            }

    def held_at_fork_events(self) -> List[Tuple[str, ...]]:
        """One sorted name tuple per fork taken while locks were held."""
        with self._mutex:
            return list(self._fork_events)

    @property
    def max_held(self) -> int:
        """Deepest simultaneous held-set any thread reached."""
        with self._mutex:
            return self._max_held

    def names(self) -> List[str]:
        """Every lock name that was acquired at least once."""
        with self._mutex:
            return sorted(self._acquisitions)


_WITNESS = LockWitness()


def get_witness() -> LockWitness:
    """The process-wide :class:`LockWitness` singleton."""
    return _WITNESS


def reset_witness() -> LockWitness:
    """Replace the singleton with a fresh one (tests) and return it.

    Witnessed locks resolve the singleton at every acquire/release, so
    locks created *before* the reset — the process-default metrics
    registry, module-global tracer locks — keep recording into the
    current witness afterwards. (An earlier draft captured the witness
    at construction; that silently dropped the service→registry edge
    for any pre-existing lock.)
    """
    global _WITNESS
    _WITNESS = LockWitness()
    return _WITNESS


class _WitnessedLock:
    """A ``threading.Lock`` work-alike that reports to the witness.

    Supports the full lock protocol (``acquire``/``release``, context
    manager, ``locked``) so it drops into ``threading.Condition`` and
    every call site a plain lock serves. The witness singleton is looked
    up per operation, never cached, so :func:`reset_witness` can swap it
    under live locks.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            get_witness().note_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        get_witness().note_released(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self.locked() else "unlocked"
        return f"<_WitnessedLock {self.name!r} {state}>"


class _WitnessedRLock:
    """Reentrant variant: witnessed, but re-entry records no edge."""

    __slots__ = ("name", "_inner")

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            get_witness().note_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        get_witness().note_released(self.name)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()


def make_lock(name: str):
    """A mutex for the named site: plain or witnessed per the env switch.

    ``name`` must be the lock's static identity — the dotted path the
    concurrency analyzer derives (``obs.flight.FlightRecorder._lock``).
    With ``REPRO_LOCK_WITNESS`` unset this returns a plain
    ``threading.Lock`` (the parity test pins the exact type); with the
    witness enabled it returns a recording wrapper carrying ``name``.
    """
    if lock_witness_enabled():
        return _WitnessedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """Reentrant counterpart of :func:`make_lock`."""
    if lock_witness_enabled():
        return _WitnessedRLock(name)
    return threading.RLock()


def make_condition(name: str):
    """A ``threading.Condition`` whose underlying mutex is witnessed.

    The condition's wait/notify protocol is untouched; only the lock
    acquisitions around it are recorded.
    """
    return threading.Condition(make_lock(name))


def make_striped_locks(name: str, n_stripes: int) -> List[object]:
    """``n_stripes`` locks sharing one witness identity ``name``.

    The striped-lock arrays (``parallel/locked.py``) are one *logical*
    lock to the ordering analysis: stripe index is data-dependent, so
    the static graph models the whole array as a single node and the
    witness reports every stripe under the array's name.
    """
    if n_stripes < 1:
        raise ValueError("n_stripes must be positive")
    if lock_witness_enabled():
        return [_WitnessedLock(name) for _ in range(n_stripes)]
    return [threading.Lock() for _ in range(n_stripes)]


# ----------------------------------------------------------------------
# Fork safety: re-initialize registered locks in forked children
# ----------------------------------------------------------------------
#: owner object -> tuple of lock attribute names to re-create in a child.
_LOCK_OWNERS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
#: Module-level callbacks run in the child after fork (global locks).
_FORK_CALLBACKS: List[Callable[[], None]] = []
_OWNERS_MUTEX = threading.Lock()


def register_lock_owner(owner: object, *attrs: str) -> None:
    """Mark ``owner``'s lock attributes for post-fork re-initialization.

    A pool worker forked while some service thread holds
    ``owner.<attr>`` would otherwise inherit a locked, ownerless mutex;
    after this registration the ``after_in_child`` hook replaces each
    attribute with a fresh lock of the same flavor (witnessed locks keep
    their witness name). Owners are held weakly.
    """
    if not attrs:
        raise ValueError("at least one lock attribute name is required")
    with _OWNERS_MUTEX:
        known = _LOCK_OWNERS.get(owner, ())
        _LOCK_OWNERS[owner] = tuple(dict.fromkeys(known + attrs))


def register_fork_callback(callback: Callable[[], None]) -> None:
    """Run ``callback`` in every forked child (module-global locks)."""
    with _OWNERS_MUTEX:
        _FORK_CALLBACKS.append(callback)


def registered_owner_count() -> int:
    """How many live owners are registered (tests / diagnostics)."""
    with _OWNERS_MUTEX:
        return len(_LOCK_OWNERS)


def _fresh_lock_like(current: object):
    """A brand-new unlocked lock of the same flavor as ``current``."""
    if isinstance(current, _WitnessedLock):
        return _WitnessedLock(current.name)
    if isinstance(current, _WitnessedRLock):
        return _WitnessedRLock(current.name)
    if isinstance(current, type(threading.RLock())):
        return threading.RLock()
    return threading.Lock()


def _iter_owner_attrs() -> Iterator[Tuple[object, str]]:
    with _OWNERS_MUTEX:
        items = [
            (owner, attrs) for owner, attrs in _LOCK_OWNERS.items()
        ]
        callbacks = list(_FORK_CALLBACKS)
    for owner, attrs in items:
        for attr in attrs:
            yield owner, attr
    # Callbacks are yielded as (callable, "") sentinels by the caller's
    # convention; kept separate for clarity instead:
    for callback in callbacks:
        yield callback, ""


def _before_fork() -> None:
    """Parent-side hook: flag witnessed locks held across the fork."""
    get_witness().note_fork()


def reinit_locks_after_fork() -> int:
    """Replace every registered lock; returns how many were replaced.

    Runs automatically in forked children (``after_in_child``); exposed
    for tests that simulate the child side without forking.
    """
    replaced = 0
    for target, attr in _iter_owner_attrs():
        if attr == "":
            target()  # a module-level callback
            replaced += 1
            continue
        current = getattr(target, attr, None)
        if current is None:
            continue
        setattr(target, attr, _fresh_lock_like(current))
        replaced += 1
    return replaced


def _after_fork_in_child() -> None:
    # The forking thread is the only survivor: clear inherited held-set
    # bookkeeping, then re-create every registered lock unlocked.
    reset_witness()
    reinit_locks_after_fork()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX builds
    os.register_at_fork(
        before=_before_fork, after_in_child=_after_fork_in_child
    )
