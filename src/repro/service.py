"""A WikiSearch-style HTTP search service (standard library only).

The paper ships its engine as an always-on web service ("We provide an
online query service and name it WikiSearch"). This module is the
reproduction's equivalent: a small JSON-over-HTTP API plus a minimal
HTML page, built on :mod:`http.server` so it carries no dependencies.

Endpoints:

* ``GET /``                     — HTML search page,
* ``GET /search?q=...&k=...&alpha=...`` — JSON answers,
* ``GET /healthz``              — liveness probe,
* ``GET /metrics``              — Prometheus text exposition (request
  latency histograms, per-endpoint counters, kernel work counters),
* ``GET /statz``                — JSON service statistics (per-endpoint
  counts, last error detail),
* ``GET /debug/queries``        — the query flight recorder's ring
  (recent and slow queries; :mod:`repro.obs.flight`),
* ``GET /debug/queries/<id>``   — one recorded query in full, including
  its Chrome-trace span tree.

The query logic lives in :class:`SearchService`, a plain object that is
fully testable without sockets; the HTTP handler is a thin shell.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from .core.central_graph import SearchAnswer
from .core.engine import EmptyQueryError, KeywordSearchEngine
from .graph.csr import KnowledgeGraph
from .obs.flight import FlightRecorder
from .obs.locks import make_lock, register_lock_owner
from .obs.metrics import MetricsRegistry, get_registry
from .viz import edge_predicates

#: Bounded endpoint label set — unknown paths collapse to "other" so a
#: scanner cannot explode the metric cardinality.
_KNOWN_ENDPOINTS = (
    "/", "/healthz", "/search", "/metrics", "/statz", "/debug/queries",
)

#: Prometheus text exposition format version (content negotiation).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Metric names as module-level constants (lint RPR012: registry calls
#: must not build names inline, so grep and the docs table stay the
#: single source of truth).
METRIC_HTTP_REQUESTS = "repro_http_requests_total"
METRIC_HTTP_REQUEST_SECONDS = "repro_http_request_seconds"
METRIC_HTTP_ERRORS = "repro_http_errors_total"


def _endpoint_label(path: str) -> str:
    if path.startswith("/debug/queries"):
        # /debug/queries/<id> must not explode cardinality: every record
        # lookup shares the listing endpoint's label.
        return "/debug/queries"
    return path if path in _KNOWN_ENDPOINTS else "other"

_PAGE = """<!doctype html>
<html><head><meta charset="utf-8"><title>WikiSearch (reproduction)</title>
<style>
 body {{ font-family: sans-serif; margin: 2rem auto; max-width: 48rem; }}
 input[type=text] {{ width: 24rem; }}
 pre {{ background: #f6f6f6; padding: 0.5rem; }}
</style></head>
<body>
<h1>WikiSearch — Central Graph keyword search (reproduction)</h1>
<p>{n_nodes} nodes / {n_edges} edges indexed. Quote phrases:
<code>"gradient descent" xml</code>.</p>
<form action="/search" method="get">
  <input type="text" name="q" placeholder="keywords...">
  <input type="hidden" name="pretty" value="1">
  k <input type="number" name="k" value="5" min="1" max="50" style="width:4rem">
  &alpha; <input type="number" name="alpha" value="0.1" step="0.05"
                 min="0.01" max="0.99" style="width:5rem">
  <button type="submit">Search</button>
</form>
</body></html>
"""


@dataclass
class ServiceStats:
    """Rolling counters exposed for monitoring.

    ``queries``/``errors`` keep their original meaning (search queries
    attempted / search queries that failed); the per-endpoint maps and
    ``last_error`` are the ``/statz`` detail view.

    Attributes:
        queries: search queries attempted (successful or not).
        errors: search queries that returned an error payload.
        requests_by_endpoint: HTTP GETs served, keyed by endpoint label
            (unknown paths collapse to ``"other"``).
        errors_by_endpoint: non-2xx responses, keyed the same way.
        last_error: detail of the most recent error response —
            ``{"endpoint", "status", "message", "query_id", "phase",
            "unix_time"}`` — or ``None`` when no error has occurred yet.
            ``query_id`` is the flight-recorder record id (fetch the
            full trace at ``/debug/queries/<id>``) and ``phase`` the
            engine phase that failed; both are ``None`` for errors that
            never reached the engine.
        started_unix: service construction time (epoch seconds).
    """

    queries: int = 0
    errors: int = 0
    requests_by_endpoint: Dict[str, int] = field(default_factory=dict)
    errors_by_endpoint: Dict[str, int] = field(default_factory=dict)
    last_error: Optional[Dict] = None
    started_unix: float = 0.0

    def as_dict(self) -> Dict:
        """JSON-serializable snapshot (the ``/statz`` payload)."""
        return {
            "queries": self.queries,
            "errors": self.errors,
            "requests_by_endpoint": dict(self.requests_by_endpoint),
            "errors_by_endpoint": dict(self.errors_by_endpoint),
            "last_error": dict(self.last_error) if self.last_error else None,
            "started_unix": self.started_unix,
            "uptime_seconds": time.time() - self.started_unix,
        }


class SearchService:
    """HTTP-agnostic query service wrapping one engine.

    Args:
        engine: the search engine answering ``/search``.
        registry: metrics destination; defaults to the process registry,
            so kernel work counters recorded by the backends land in the
            same ``/metrics`` output as the HTTP series.
        flight: query flight recorder backing ``/debug/queries``. When
            omitted, the engine's attached recorder is adopted (so
            several services sharing one engine expose one ring), else
            a fresh env-configured recorder is built and attached.
    """

    def __init__(
        self,
        engine: KeywordSearchEngine,
        registry: Optional[MetricsRegistry] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.engine = engine
        self.graph: KnowledgeGraph = engine.graph
        self.stats = ServiceStats(started_unix=time.time())
        self.registry = registry if registry is not None else get_registry()
        if flight is not None:
            self.flight = flight
        elif engine.flight is not None:
            self.flight = engine.flight
        else:
            self.flight = FlightRecorder.from_env()
        engine.flight = self.flight
        self._lock = make_lock("service.SearchService._lock")
        register_lock_owner(self, "_lock")

    def _record_request(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        message: str = "",
        query_id: Optional[int] = None,
        phase: Optional[str] = None,
    ) -> None:
        """Update stats + metrics for one served GET."""
        with self._lock:
            self.stats.requests_by_endpoint[endpoint] = (
                self.stats.requests_by_endpoint.get(endpoint, 0) + 1
            )
            if status >= 400:
                self.stats.errors_by_endpoint[endpoint] = (
                    self.stats.errors_by_endpoint.get(endpoint, 0) + 1
                )
                self.stats.last_error = {
                    "endpoint": endpoint,
                    "status": status,
                    "message": message,
                    "query_id": query_id,
                    "phase": phase,
                    "unix_time": time.time(),
                }
        self.registry.counter(
            METRIC_HTTP_REQUESTS, "HTTP GETs served",
            endpoint=endpoint,
        ).inc()
        self.registry.histogram(
            METRIC_HTTP_REQUEST_SECONDS, "HTTP request latency",
            endpoint=endpoint,
        ).observe(seconds)
        if status >= 400:
            self.registry.counter(
                METRIC_HTTP_ERRORS, "HTTP error responses",
                endpoint=endpoint,
            ).inc()

    # ------------------------------------------------------------------
    # Pure request logic (unit-testable)
    # ------------------------------------------------------------------
    def index_page(self) -> str:
        return _PAGE.format(
            n_nodes=self.graph.n_nodes, n_edges=self.graph.n_edges
        )

    def answer_payload(self, answer: SearchAnswer) -> Dict:
        """JSON-serializable view of one ranked answer."""
        graph = self.graph
        central = answer.graph
        return {
            "central_node": central.central_node,
            "central_text": graph.node_text[central.central_node],
            "depth": central.depth,
            "score": answer.score,
            "nodes": [
                {
                    "id": node,
                    "text": graph.node_text[node],
                    "keywords": [
                        answer.keywords[column]
                        for column in sorted(
                            central.keyword_contributions.get(node, ())
                        )
                        if column < len(answer.keywords)
                    ],
                }
                for node in sorted(central.nodes)
            ],
            "edges": [
                {
                    "source": source,
                    "target": target,
                    "predicates": edge_predicates(graph, source, target),
                }
                for source, target in sorted(central.edges)
            ],
        }

    def handle_search(
        self,
        query: str,
        k: int = 5,
        alpha: float = 0.1,
    ) -> "tuple[int, Dict]":
        """Run one query; returns (http_status, json_payload)."""
        if not query.strip():
            return 400, {"error": "missing query parameter 'q'"}
        if not (1 <= k <= 100):
            return 400, {"error": "k must be between 1 and 100"}
        if not (0.0 < alpha < 1.0):
            return 400, {"error": "alpha must lie strictly in (0, 1)"}
        from .text.suggest import suggest_for_dropped

        with self._lock:
            self.stats.queries += 1
        try:
            result = self.engine.search(query, k=k, alpha=alpha)
        except EmptyQueryError as error:
            with self._lock:
                self.stats.errors += 1
            # "Did you mean": nearby vocabulary for the unmatched terms.
            suggestions = suggest_for_dropped(
                self.engine.index, query.split()
            )
            return 404, {
                "error": str(error),
                "suggestions": suggestions,
                # Flight-recorder linkage: the failed query's record id
                # and failing phase (None when recording was off).
                "query_id": getattr(error, "query_id", None),
                "phase": getattr(error, "phase", None),
            }
        payload = {
            "query": query,
            "query_id": result.query_id,
            "keywords": list(result.keywords),
            "dropped_terms": list(result.dropped_terms),
            "depth": result.depth,
            "n_central_nodes": result.n_central_nodes,
            "milliseconds": result.milliseconds(),
            "answers": [
                self.answer_payload(answer) for answer in result.answers
            ],
        }
        if result.dropped_terms:
            payload["suggestions"] = suggest_for_dropped(
                self.engine.index, result.dropped_terms
            )
        return 200, payload

    def handle_path(self, path: str) -> "tuple[int, str, str]":
        """Dispatch one GET path; returns (status, content_type, body).

        Every dispatch lands in the request counters and the latency
        histogram (labelled by endpoint), and error responses update
        ``stats.last_error``.
        """
        parsed = urlparse(path)
        endpoint = _endpoint_label(parsed.path)
        start = time.perf_counter()
        status, content_type, body = self._dispatch(parsed)
        message = ""
        query_id: Optional[int] = None
        phase: Optional[str] = None
        if status >= 400 and content_type == "application/json":
            try:
                detail = json.loads(body)
                message = detail.get("error", "")
                query_id = detail.get("query_id")
                phase = detail.get("phase")
            except (ValueError, AttributeError):  # pragma: no cover
                message = ""
        self._record_request(
            endpoint,
            status,
            time.perf_counter() - start,
            message,
            query_id=query_id,
            phase=phase,
        )
        return status, content_type, body

    def _dispatch(self, parsed) -> "tuple[int, str, str]":
        if parsed.path == "/":
            return 200, "text/html; charset=utf-8", self.index_page()
        if parsed.path == "/healthz":
            return 200, "application/json", json.dumps(
                {"status": "ok", "queries": self.stats.queries}
            )
        if parsed.path == "/metrics":
            return 200, PROMETHEUS_CONTENT_TYPE, self.registry.render_prometheus()
        if parsed.path == "/statz":
            # Graph storage accounting: mmap-backed stores report their
            # resident page estimate alongside the full CSR size, so an
            # operator can tell page cache from heap. Computed outside
            # the stats lock — it may touch mmap pages.
            storage = self.graph.memory_report()
            # Stats and metrics are read under the service lock so the
            # endpoint counts and the HTTP counters describe the same
            # instant (a concurrent /search cannot land between them).
            # This nests service -> registry -> instrument locks; the
            # concurrency analyzer's lock-order graph pins that order.
            with self._lock:
                payload = {
                    "service": self.stats.as_dict(),
                    "storage": storage,
                    "metrics": self.registry.snapshot(),
                }
            return 200, "application/json", json.dumps(payload)
        if parsed.path == "/debug/queries":
            return 200, "application/json", json.dumps(
                self.flight.debug_payload()
            )
        if parsed.path.startswith("/debug/queries/"):
            raw_id = parsed.path[len("/debug/queries/"):]
            try:
                query_id = int(raw_id)
            except ValueError:
                return 400, "application/json", json.dumps(
                    {"error": f"query id must be an integer, got {raw_id!r}"}
                )
            record = self.flight.get(query_id)
            if record is None:
                return 404, "application/json", json.dumps(
                    {"error": f"no flight record for query id {query_id}"}
                )
            return 200, "application/json", json.dumps(
                record.as_dict(include_trace=True)
            )
        if parsed.path == "/search":
            params = parse_qs(parsed.query)
            query = params.get("q", [""])[0]
            try:
                k = int(params.get("k", ["5"])[0])
                alpha = float(params.get("alpha", ["0.1"])[0])
            except ValueError:
                return 400, "application/json", json.dumps(
                    {"error": "k and alpha must be numeric"}
                )
            status, payload = self.handle_search(query, k=k, alpha=alpha)
            indent = 2 if params.get("pretty") else None
            return status, "application/json", json.dumps(payload, indent=indent)
        return 404, "application/json", json.dumps({"error": "not found"})


class _Handler(BaseHTTPRequestHandler):
    service: SearchService  # injected by create_server

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        status, content_type, body = self.service.handle_path(self.path)
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output quiet; hook in real logging if needed


def create_server(
    engine: KeywordSearchEngine,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """Build a ready-to-serve HTTP server (port 0 = ephemeral).

    Call ``serve_forever()`` on the result, or run it in a thread:

    >>> server = create_server(engine)          # doctest: +SKIP
    >>> threading.Thread(target=server.serve_forever, daemon=True).start()
    """
    service = SearchService(engine)
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.service = service  # type: ignore[attr-defined]
    return server
