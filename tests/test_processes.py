"""Shared-memory multi-process expansion backend."""

import numpy as np
import pytest

from repro.core.bottom_up import BottomUpSearch
from repro.graph.generators import chain_graph, random_graph
from repro.parallel import ProcessPoolBackend, SequentialBackend

from conftest import zero_activation

pytestmark = pytest.mark.skipif(
    not ProcessPoolBackend.is_supported(),
    reason="requires the fork start method",
)


@pytest.fixture(autouse=True)
def _drain_warm_pools():
    """Persistent pools outlive backend.close(); keep tests isolated."""
    from repro.parallel import pool as pool_module

    yield
    pool_module.shutdown_all()


def _sets(*groups):
    return [np.array(g, dtype=np.int64) for g in groups]


def _signature(result):
    return (
        sorted(result.central_nodes),
        result.state.matrix.tobytes(),
        result.state.f_identifier.tobytes(),
    )


def test_matches_sequential_on_chain(chain5):
    backend = ProcessPoolBackend(chain5, n_processes=2)
    try:
        parallel = BottomUpSearch(chain5, backend).run(
            _sets([0], [4]), zero_activation(chain5), k=1
        )
    finally:
        backend.close()
    sequential = BottomUpSearch(chain5, SequentialBackend()).run(
        _sets([0], [4]), zero_activation(chain5), k=1
    )
    assert _signature(parallel) == _signature(sequential)


@pytest.mark.parametrize("seed", [0, 7, 21])
def test_matches_sequential_on_random_graphs(seed):
    graph = random_graph(30, 90, seed=seed)
    rng = np.random.default_rng(seed)
    sets = [
        np.unique(rng.integers(0, 30, size=3)),
        np.unique(rng.integers(0, 30, size=2)),
    ]
    activation = rng.integers(0, 3, size=30).astype(np.int32)
    backend = ProcessPoolBackend(graph, n_processes=3)
    try:
        parallel = BottomUpSearch(graph, backend).run(sets, activation, k=4)
    finally:
        backend.close()
    sequential = BottomUpSearch(graph, SequentialBackend()).run(
        sets, activation, k=4
    )
    assert _signature(parallel) == _signature(sequential)


def test_segment_reused_across_queries(chain5):
    backend = ProcessPoolBackend(chain5, n_processes=2, persistent=False)
    try:
        searcher = BottomUpSearch(chain5, backend)
        searcher.run(_sets([0], [4]), zero_activation(chain5), k=1)
        first_segment = backend.pool._segment
        searcher.run(_sets([1], [3]), zero_activation(chain5), k=1)
        assert backend.pool._segment is first_segment
    finally:
        backend.close()


def test_rejects_foreign_graph(chain5):
    other = chain_graph(4)
    backend = ProcessPoolBackend(chain5, n_processes=1)
    try:
        with pytest.raises(ValueError, match="bound to the graph"):
            BottomUpSearch(other, backend).run(
                _sets([0], [3]), zero_activation(other), k=1
            )
    finally:
        backend.close()


def test_validates_arguments(chain5):
    with pytest.raises(ValueError):
        ProcessPoolBackend(chain5, n_processes=0)
    with pytest.raises(ValueError):
        ProcessPoolBackend(chain5, n_processes=1, chunks_per_process=0)


def test_close_releases_resources(chain5):
    backend = ProcessPoolBackend(chain5, n_processes=1, persistent=False)
    BottomUpSearch(chain5, backend).run(
        _sets([0], [4]), zero_activation(chain5), k=1
    )
    backend.close()
    assert backend.pool._segment is None
    assert not backend.pool.alive
