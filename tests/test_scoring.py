"""Eq. 6 scoring and the top-k heap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.central_graph import CentralGraph
from repro.core.scoring import TopKHeap, central_graph_score


def _graph(nodes, depth=2, central=None):
    nodes = set(nodes)
    central = central if central is not None else min(nodes)
    return CentralGraph(
        central_node=central,
        depth=depth,
        nodes=nodes,
        edges=set(),
        keyword_contributions={},
    )


def test_score_hand_computed():
    weights = np.array([0.1, 0.2, 0.3, 0.4])
    graph = _graph({0, 2}, depth=4)
    # 4^0.2 * (0.1 + 0.3)
    assert central_graph_score(graph, weights, lam=0.2) == pytest.approx(
        4 ** 0.2 * 0.4
    )


def test_lambda_zero_ignores_depth():
    weights = np.array([0.5, 0.5])
    shallow = _graph({0}, depth=1)
    deep = _graph({0}, depth=9)
    assert central_graph_score(shallow, weights, 0.0) == central_graph_score(
        deep, weights, 0.0
    )


def test_depth_zero_scores_zero():
    weights = np.array([0.9])
    graph = _graph({0}, depth=0)
    assert central_graph_score(graph, weights, 0.2) == 0.0


def test_negative_lambda_rejected():
    with pytest.raises(ValueError):
        central_graph_score(_graph({0}), np.array([1.0]), lam=-0.1)


def test_larger_lambda_penalizes_depth_more():
    weights = np.ones(3)
    deep = _graph({0, 1}, depth=8)
    assert central_graph_score(deep, weights, 0.5) > central_graph_score(
        deep, weights, 0.2
    )


def test_topk_heap_keeps_lowest_scores():
    heap = TopKHeap(2)
    for score, node in [(5.0, 0), (1.0, 1), (3.0, 2), (0.5, 3)]:
        graph = _graph({node}, central=node)
        graph.score = score
        heap.offer(graph)
    ranked = heap.ranked()
    assert [g.score for g in ranked] == [0.5, 1.0]
    assert len(heap) == 2


def test_topk_heap_offer_reports_acceptance():
    heap = TopKHeap(1)
    good = _graph({0})
    good.score = 1.0
    bad = _graph({1}, central=1)
    bad.score = 2.0
    assert heap.offer(good)
    assert not heap.offer(bad)
    better = _graph({2}, central=2)
    better.score = 0.1
    assert heap.offer(better)
    assert heap.ranked()[0].score == 0.1


def test_topk_heap_worst_kept_score():
    heap = TopKHeap(2)
    assert heap.worst_kept_score() is None
    for score in (3.0, 1.0):
        graph = _graph({int(score)})
        graph.score = score
        heap.offer(graph)
    assert heap.worst_kept_score() == 3.0


def test_topk_heap_rejects_bad_k():
    with pytest.raises(ValueError):
        TopKHeap(0)


def test_topk_deterministic_tiebreak():
    heap = TopKHeap(2)
    graphs = []
    for node in (5, 1, 3):
        graph = _graph({node}, central=node)
        graph.score = 1.0
        graphs.append(graph)
        heap.offer(graph)
    ranked = heap.ranked()
    # Equal scores and sizes: lowest central node id wins.
    assert [g.central_node for g in ranked] == [1, 3]


@settings(max_examples=40, deadline=None)
@given(
    scores=st.lists(st.floats(0, 100), min_size=1, max_size=30),
    k=st.integers(1, 10),
)
def test_topk_heap_equals_sorted_prefix(scores, k):
    heap = TopKHeap(k)
    for index, score in enumerate(scores):
        graph = _graph({index}, central=index)
        graph.score = score
        heap.offer(graph)
    ranked = [g.score for g in heap.ranked()]
    assert ranked == sorted(scores)[: min(k, len(scores))]
