"""Tests for the ``repro.analysis`` package and the ``repro check`` gate.

Covers the shadow-memory invariant checker (CheckedBackend + WriteLog),
its self-validation against deliberately faulty backends, the
repo-specific AST lint rules (including the store-write rule RPR010,
the binding-set rule RPR011, and exact-id noqa matching), the
ASan/UBSan and TSan sanitizer wiring with its suppression policy, and
the CLI exit codes the CI ``check`` job relies on. The ABI verifier and
schedule explorer have dedicated files (``test_abi.py``,
``test_schedules.py``); their ``--inject`` CLI contracts are pinned
here alongside the other injection classes.
"""

import textwrap

import numpy as np
import pytest

from repro.analysis import (
    FAULT_MODES,
    CheckedBackend,
    FaultyBackend,
    InvariantViolationError,
    WriteLog,
    lint_source,
    run_lint,
)
from repro.analysis.check import run_check, run_faulty_validation
from repro.core.bottom_up import BottomUpSearch
from repro.graph.generators import WikiKBConfig, wiki_like_kb
from repro.parallel import (
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
)


def _kb(seed=3):
    config = WikiKBConfig(
        name=f"analysis-{seed}",
        seed=seed,
        n_papers=60,
        n_people=30,
        n_misc=30,
        n_venues=8,
        n_orgs=8,
    )
    graph, _ = wiki_like_kb(config)
    return graph


def _problem(graph, seed, q):
    from repro.core.activation import activation_levels
    from repro.core.weights import node_weights

    rng = np.random.default_rng(seed)
    n = graph.n_nodes
    sets = [
        np.unique(rng.integers(0, n, size=int(rng.integers(1, 6))))
        for _ in range(q)
    ]
    if seed % 2:
        activation = activation_levels(node_weights(graph), 3.0, 0.1)
    else:
        activation = np.zeros(n, dtype=np.int32)
    return sets, activation, int(rng.integers(1, 12))


def _run(backend, graph, sets, activation, k):
    with backend:
        return BottomUpSearch(graph, backend=backend).run(sets, activation, k)


# ---------------------------------------------------------------------------
# WriteLog
# ---------------------------------------------------------------------------
def test_write_log_partitions_batches_per_thread():
    import threading

    log = WriteLog()
    log.record_matrix(np.array([1, 2, 2]), value=1, level=0)

    def worker():
        log.record_matrix(np.array([2, 3]), value=1, level=0)
        log.record_frontier(np.array([7]), value=1, level=0)

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert log.n_threads() == 2
    assert log.n_batches() == 3
    cells, values = log.matrix_writes()
    # Duplicates preserved — racing writes are the point.
    assert sorted(cells.tolist()) == [1, 2, 2, 2, 3]
    assert set(values.tolist()) == {1}
    nodes, flag_values = log.frontier_writes()
    assert nodes.tolist() == [7]
    assert flag_values.tolist() == [1]


def test_write_log_copies_input_arrays():
    log = WriteLog()
    cells = np.array([5, 6], dtype=np.int64)
    log.record_matrix(cells, value=2, level=1)
    cells[0] = 99
    recorded, _ = log.matrix_writes()
    assert recorded.tolist() == [5, 6]


# ---------------------------------------------------------------------------
# CheckedBackend: clean backends pass, bitwise identical to sequential
# ---------------------------------------------------------------------------
def _contenders(graph):
    backends = {
        "threads": ThreadPoolBackend(n_threads=3),
        "vectorized": VectorizedBackend(),
        "vectorized-numpy": VectorizedBackend(native=False),
    }
    if ProcessPoolBackend.is_supported():
        backends["processes"] = ProcessPoolBackend(graph, n_processes=2)
    return backends


@pytest.mark.parametrize("seed", [0, 1, 4])
def test_checked_backends_clean_and_bitwise_identical(seed):
    graph = _kb(seed)
    q = 2 + seed % 7
    sets, activation, k = _problem(graph, seed * 31 + 7, q)
    reference = _run(
        CheckedBackend(SequentialBackend()), graph, sets, activation, k
    )
    for name, backend in _contenders(graph).items():
        checked = CheckedBackend(backend)
        result = _run(checked, graph, sets, activation, k)
        assert checked.levels_checked > 0, name
        assert not checked.violations, name
        assert np.array_equal(
            result.state.matrix, reference.state.matrix
        ), name
        assert sorted(result.central_nodes) == sorted(
            reference.central_nodes
        ), name
        assert result.depth == reference.depth, name


def test_adversarial_chunk_size_one_high_thread_count():
    """The satellite stress case: chunk size 1 maximizes racing chunks."""
    graph = _kb(7)
    sets, activation, k = _problem(graph, 71, q=5)
    reference = _run(SequentialBackend(), graph, sets, activation, k)
    # chunks_per_thread=64 with 8 threads splits every frontier down to
    # single-node chunks (frontiers here are far below 512 nodes).
    checked = CheckedBackend(
        ThreadPoolBackend(n_threads=8, chunks_per_thread=64)
    )
    result = _run(checked, graph, sets, activation, k)
    assert not checked.violations
    assert np.array_equal(result.state.matrix, reference.state.matrix)
    assert sorted(result.central_nodes) == sorted(reference.central_nodes)
    assert result.depth == reference.depth


def test_checked_backend_is_zero_cost_when_not_wrapped():
    """No log is attached unless a CheckedBackend interposes one."""
    graph = _kb(0)
    sets, activation, k = _problem(graph, 7, q=3)
    backend = VectorizedBackend()
    search = BottomUpSearch(graph, backend=backend)
    result = search.run(sets, activation, k)
    assert result.state.write_log is None


def test_checked_backend_delegates_name_tracer_counters():
    from repro.obs.tracing import Tracer

    inner = ThreadPoolBackend(n_threads=2)
    checked = CheckedBackend(inner)
    assert checked.name == f"checked:{inner.name}"
    tracer = Tracer(enabled=False)
    checked.tracer = tracer
    assert inner.tracer is tracer
    checked.last_counters = None
    assert inner.last_counters is None
    checked.close()


# ---------------------------------------------------------------------------
# FaultyBackend: the checker must catch every injected fault class
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mode", FAULT_MODES)
def test_faulty_backend_detected(mode):
    graph = _kb(2)
    sets, activation, k = _problem(graph, 2 * 31 + 7, q=4)
    faulty = FaultyBackend(mode=mode)
    checked = CheckedBackend(faulty, raise_on_violation=False)
    _run(checked, graph, sets, activation, k)
    assert faulty.faults_injected > 0
    assert checked.violations, f"fault {mode!r} went undetected"


def test_faulty_backend_raises_by_default():
    graph = _kb(2)
    sets, activation, k = _problem(graph, 2 * 31 + 7, q=4)
    with pytest.raises(InvariantViolationError) as exc_info:
        _run(
            CheckedBackend(FaultyBackend(mode="non-idempotent")),
            graph, sets, activation, k,
        )
    assert exc_info.value.violations


def test_faulty_validation_helper_all_modes():
    assert run_faulty_validation() == 0


def test_faulty_backend_rejects_unknown_mode():
    with pytest.raises(ValueError):
        FaultyBackend(mode="slow")


# ---------------------------------------------------------------------------
# CheckedBackend over the whole-level fast path
# ---------------------------------------------------------------------------
def test_checked_backend_verifies_whole_level_path():
    """Wrapping a run_level backend keeps the fast path *and* the checks."""
    graph = _kb(1)
    sets, activation, k = _problem(graph, 38, q=4)
    checked = CheckedBackend(VectorizedBackend())
    # The feature probe must see run_level through the wrapper, so the
    # bottom-up loop stays on the one-call-per-level path while checked.
    assert getattr(checked, "run_level", None) is not None
    result = _run(checked, graph, sets, activation, k)
    assert checked.levels_checked > 0
    assert not checked.violations
    reference = _run(SequentialBackend(), graph, sets, activation, k)
    assert np.array_equal(result.state.matrix, reference.state.matrix)


def test_checked_backend_hides_run_level_of_step_backends():
    """A step-only inner backend must not grow a phantom run_level."""
    checked = CheckedBackend(ThreadPoolBackend(n_threads=2))
    assert getattr(checked, "run_level", None) is None


class _EvilWholeLevel(VectorizedBackend):
    """Corrupts one matrix cell from inside the whole-level call."""

    def __init__(self):
        super().__init__()
        self.injected = False

    def run_level(self, graph, state, level, k, may_expand):
        outcome = super().run_level(graph, state, level, k, may_expand)
        if not self.injected:
            cells = np.flatnonzero(state.matrix.ravel() == level + 1)
            if len(cells):
                # A write of level + 3 violates the level-stamp invariant
                # (every write at level L stores exactly L + 1).
                state.matrix.ravel()[cells[0]] = level + 3
                self.injected = True
        return outcome


def test_checked_backend_detects_corrupted_whole_level():
    graph = _kb(1)
    sets, activation, k = _problem(graph, 38, q=4)
    evil = _EvilWholeLevel()
    with pytest.raises(InvariantViolationError) as exc_info:
        _run(CheckedBackend(evil), graph, sets, activation, k)
    assert evil.injected
    assert exc_info.value.violations


# ---------------------------------------------------------------------------
# Lint rules
# ---------------------------------------------------------------------------
def _rules_of(source):
    violations, _ = lint_source(textwrap.dedent(source))
    return {violation.rule for violation in violations}


def test_lint_clean_on_real_codebase():
    report = run_lint()
    assert report.ok, "\n".join(str(v) for v in report.violations)
    assert report.files_checked > 50


def test_rpr001_lock_in_hot_path():
    assert "RPR001" in _rules_of(
        """
        import threading
        from repro.instrumentation import hot_path

        @hot_path
        def kernel(chunk):
            lock = threading.Lock()
            with lock:
                return chunk
        """
    )


def test_rpr002_per_edge_loop_in_hot_path_but_column_range_allowed():
    flagged = _rules_of(
        """
        from repro.instrumentation import hot_path

        @hot_path
        def kernel(chunk, q):
            for node in chunk:
                pass
        """
    )
    assert "RPR002" in flagged
    clean = _rules_of(
        """
        from repro.instrumentation import hot_path

        @hot_path
        def kernel(chunk, q):
            for column in range(q):
                pass
        """
    )
    assert "RPR002" not in clean


def test_rpr003_dtype_conversions_in_hot_path():
    flagged = _rules_of(
        """
        import numpy as np
        from repro.instrumentation import hot_path

        @hot_path
        def kernel(graph):
            idx = graph.adj.indices.astype(np.int64)
            extra = np.zeros(4, dtype=np.int32)
            return idx, extra
        """
    )
    assert "RPR003" in flagged


def test_rpr004_unregistered_env_var():
    violations, _ = lint_source(
        'import os\nflag = os.environ.get("REPRO_TOTALLY_NEW_FLAG")\n'
    )
    assert {"RPR004"} == {v.rule for v in violations}
    # Registered ones pass.
    clean, _ = lint_source('import os\nflag = os.environ.get("REPRO_OBS")\n')
    assert not clean


def test_rpr005_span_without_parent_in_nested_function():
    flagged = _rules_of(
        """
        def expand(self, level):
            def run_chunk(chunk):
                with self.tracer.span("chunk"):
                    return chunk
            return run_chunk
        """
    )
    assert "RPR005" in flagged
    clean = _rules_of(
        """
        def expand(self, level):
            parent = self.tracer.current_span()
            def run_chunk(chunk):
                with self.tracer.span("chunk", parent=parent):
                    return chunk
            return run_chunk
        """
    )
    assert "RPR005" not in clean


def test_rpr006_bare_except():
    assert "RPR006" in _rules_of(
        """
        def f():
            try:
                return 1
            except:
                return 2
        """
    )


def test_rpr007_mutable_default():
    assert "RPR007" in _rules_of("def f(x, acc=[]):\n    return acc\n")
    assert "RPR007" not in _rules_of("def f(x, acc=None):\n    return acc\n")


def test_rpr008_wall_clock_time():
    assert "RPR008" in _rules_of(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    assert "RPR008" not in _rules_of(
        "import time\n\ndef f():\n    return time.perf_counter()\n"
    )


def test_rpr009_csr_copy_in_hot_path():
    flagged = _rules_of(
        """
        import numpy as np

        @hot_path
        def kernel(graph):
            a = np.asarray(graph.adj.indices)
            b = graph.adj.indptr.copy()
            c = np.ascontiguousarray(graph.out.labels)
            return a, b, c
        """
    )
    assert "RPR009" in flagged


def test_rpr009_allows_non_csr_copies_and_cold_code():
    clean = _rules_of(
        """
        import numpy as np

        @hot_path
        def kernel(graph, chunk):
            chunk = np.ascontiguousarray(chunk)
            return graph.adj.indices64

        def cold_path(graph):
            return np.asarray(graph.adj.indices)
        """
    )
    assert "RPR009" not in clean


def test_noqa_suppresses_specific_rule():
    source = "import time\n\ndef f():\n    return time.time()  # noqa: RPR008\n"
    violations, suppressed = lint_source(source)
    assert not violations
    assert [s.rule for s in suppressed] == ["RPR008"]
    # A noqa for a different rule does not suppress.
    other = "import time\n\ndef f():\n    return time.time()  # noqa: RPR001\n"
    violations, suppressed = lint_source(other)
    assert [v.rule for v in violations] == ["RPR008"]
    assert not suppressed


def test_noqa_exact_id_matching_regression():
    """A short id must never suppress a longer id it prefixes, and vice
    versa (regression for substring-style matching)."""
    from repro.analysis.lint import LintViolation, _split_suppressed

    long_id = [LintViolation("p", 1, 0, "RPR0010", "m")]
    active, suppressed = _split_suppressed(long_id, "x = 1  # noqa: RPR001\n")
    assert [v.rule for v in active] == ["RPR0010"]
    assert not suppressed

    short_id = [LintViolation("p", 1, 0, "RPR001", "m")]
    active, suppressed = _split_suppressed(short_id, "x = 1  # noqa: RPR0010\n")
    assert [v.rule for v in active] == ["RPR001"]
    assert not suppressed

    # Exact ids still suppress, in comma- and space-separated lists.
    active, suppressed = _split_suppressed(
        long_id, "x = 1  # noqa: RPR001, RPR0010\n"
    )
    assert not active and [v.rule for v in suppressed] == ["RPR0010"]


def test_rpr010_store_backed_writes_flagged():
    source = """
        import numpy as np
        from repro.graph.store import open_worker_arrays

        arr = np.memmap("x.bin", dtype="int64", mode="r")
        indptr, indices = open_worker_arrays("g.csrstore")

        def corrupt():
            arr[0] = 5
            indices[3] += 1
            arr.setflags(write=True)
            return np.memmap("y.bin", dtype="int64", mode="r+")
        """
    violations, _ = lint_source(
        textwrap.dedent(source), relative_to_package="parallel/foo.py"
    )
    assert [v.rule for v in violations] == ["RPR010"] * 4


def test_rpr010_silent_in_store_writer_scope_and_for_reads():
    source = """
        import numpy as np

        mapped = np.memmap("x.bin", dtype="int64", mode="r+")
        mapped[0] = 1
        mapped.setflags(write=True)
        """
    violations, _ = lint_source(
        textwrap.dedent(source), relative_to_package="graph/store.py"
    )
    assert not violations
    reads = """
        import numpy as np

        arr = np.memmap("x.bin", dtype="int64", mode="r")
        total = arr.sum() + arr[0]
        other = np.zeros(4)
        other[0] = 1
        """
    violations, _ = lint_source(
        textwrap.dedent(reads), relative_to_package="parallel/foo.py"
    )
    assert not violations


def test_rpr011_kernel_binding_set_equality():
    from repro.analysis.lint import kernel_binding_violations

    # The real repo is in sync.
    assert kernel_binding_violations() == []
    # Export without a binding.
    drift = kernel_binding_violations(
        kernel_source="int64_t new_symbol(int64_t x) {\n",
        native_source="",
    )
    assert [v.rule for v in drift] == ["RPR011"]
    assert "new_symbol" in drift[0].message
    # Binding without an export.
    drift = kernel_binding_violations(
        kernel_source="", native_source="fn = library.ghost_symbol\n"
    )
    assert [v.rule for v in drift] == ["RPR011"]
    assert "ghost_symbol" in drift[0].message


def test_rpr012_inline_metric_names_flagged():
    # f-string metric name on a registry receiver.
    assert "RPR012" in _rules_of(
        """
        def emit(registry, field):
            registry.counter(f"repro_{field}_total", "help").inc()
        """
    )
    # Inline string literal, get_registry() receiver, name= keyword.
    assert "RPR012" in _rules_of(
        """
        from repro.obs.metrics import get_registry

        def emit():
            get_registry().gauge("repro_pool_workers").set(1)
        """
    )
    assert "RPR012" in _rules_of(
        """
        def emit(self):
            self.registry.histogram(name="repro_http_request_seconds")
        """
    )


def test_rpr012_constant_names_and_unrelated_receivers_pass():
    clean = _rules_of(
        """
        METRIC_REQUESTS = "repro_http_requests_total"

        def emit(registry, endpoint):
            registry.counter(METRIC_REQUESTS, "GETs", endpoint=endpoint).inc()
        """
    )
    assert "RPR012" not in clean
    # A non-registry receiver with a same-named method is out of scope.
    unrelated = _rules_of(
        """
        def tally(bank):
            return bank.counter("slot-7")
        """
    )
    assert "RPR012" not in unrelated


def test_flight_env_vars_registered_for_rpr004():
    import inspect

    from repro.analysis.lint import registered_env_vars
    from repro.obs import config

    registered = registered_env_vars(inspect.getsource(config))
    assert {"REPRO_SLOW_MS", "REPRO_FLIGHT_N"} <= registered


def test_run_lint_allowlist_waives_rules_into_allowed(tmp_path):
    module = tmp_path / "helper.py"
    module.write_text("def f(acc=[]):\n    return acc\n", encoding="utf-8")
    strict = run_lint(tmp_path)
    assert [v.rule for v in strict.violations] == ["RPR007"]
    waived = run_lint(tmp_path, allow=("RPR007",))
    assert not waived.violations
    assert [v.rule for v in waived.allowed] == ["RPR007"]


def test_repo_test_and_benchmark_trees_lint_clean():
    from pathlib import Path

    from repro.analysis.check import LINT_TREES, _repo_root

    for tree, allow in LINT_TREES:
        tree_path = _repo_root() / tree
        assert tree_path.is_dir(), tree
        report = run_lint(Path(tree_path), allow=allow)
        assert report.ok, "\n".join(str(v) for v in report.violations)


def test_hot_path_marker_is_inert():
    from repro.instrumentation import hot_path
    from repro.parallel.vectorized import fused_expand_chunk, pull_expand

    @hot_path
    def f(x):
        return x + 1

    assert f(1) == 2
    assert f.__hot_path__ is True
    # The real kernels are marked; the sequential oracle is not.
    assert getattr(fused_expand_chunk, "__hot_path__", False)
    assert getattr(pull_expand, "__hot_path__", False)
    from repro.parallel.sequential import expand_frontier_chunk

    assert not getattr(expand_frontier_chunk, "__hot_path__", False)


# ---------------------------------------------------------------------------
# Env-var registry pins
# ---------------------------------------------------------------------------
def test_sanitize_env_var_registered_and_pinned():
    from repro.obs import config
    from repro.parallel import _native

    assert config.ENV_SANITIZE == _native.ENV_SANITIZE


def test_dataset_cache_env_var_registered_and_pinned():
    from repro.bench import datasets
    from repro.obs import config

    assert config.ENV_DATASET_CACHE == datasets.CACHE_ENV_VAR


# ---------------------------------------------------------------------------
# Sanitizer wiring (gated on the toolchain; heavy paths live in CI)
# ---------------------------------------------------------------------------
def test_sanitize_selection_parsing():
    from repro.parallel._native import sanitize_cflags, sanitize_selection

    assert sanitize_selection("") == ()
    assert sanitize_selection("address") == ("address",)
    assert sanitize_selection("undefined,address") == ("address", "undefined")
    assert sanitize_cflags(()) == ()
    assert "-fsanitize=address,undefined" in sanitize_cflags(
        ("address", "undefined")
    )
    with pytest.raises(ValueError):
        sanitize_selection("adress")


def test_sanitize_env_typo_disables_native_tier(monkeypatch):
    from repro.parallel import _native

    monkeypatch.setenv(_native.ENV_SANITIZE, "bogus")
    assert _native.load_kernel() is None


def test_sanitized_smoke_clean():
    from repro.analysis import sanitize

    if not sanitize.toolchain_available():
        pytest.skip("sanitizer toolchain unavailable")
    result = sanitize.run_smoke()
    assert result.ok, result.detail
    assert not result.skipped


# ---------------------------------------------------------------------------
# TSan race tier (suppression policy is checked untoolchained; the
# harness runs are gated — the dedicated CI job exercises them)
# ---------------------------------------------------------------------------
def test_thread_sanitizer_selection_and_flags():
    from repro.parallel._native import sanitize_cflags, sanitize_selection

    assert sanitize_selection("thread") == ("thread",)
    flags = sanitize_cflags(("thread",))
    assert "-fsanitize=thread" in flags
    assert "-pthread" in flags
    with pytest.raises(ValueError):
        sanitize_selection("address,thread")


def test_tsan_suppression_audit_clean_and_policy_enforced(monkeypatch):
    from repro.analysis import sanitize

    assert sanitize.audit_suppressions() == []
    # Every entry maps to a declared idempotent write site by name.
    sites = sanitize.declared_idempotent_sites()
    assert "fused_expand" in sites and "fused_expand_lanes" in sites

    # A blanket suppression violates the policy.
    monkeypatch.setattr(
        sanitize,
        "THEOREM_V2_SUPPRESSIONS",
        (("race:*", "Theorem V.2 idempotent blanket"),),
    )
    assert any(
        "banned" in problem for problem in sanitize.audit_suppressions()
    )
    # A suppression naming a non-exported symbol violates the policy.
    monkeypatch.setattr(
        sanitize,
        "THEOREM_V2_SUPPRESSIONS",
        (("race:not_a_kernel_symbol", "Theorem V.2 idempotent store"),),
    )
    assert any(
        "not an" in problem for problem in sanitize.audit_suppressions()
    )
    # A suppression without the Theorem V.2 citation violates the policy.
    monkeypatch.setattr(
        sanitize,
        "THEOREM_V2_SUPPRESSIONS",
        (("race:fused_expand", "just trust me"),),
    )
    assert any(
        "cite" in problem for problem in sanitize.audit_suppressions()
    )


def test_tsan_suppression_file_written_from_declaration(tmp_path):
    from repro.analysis import sanitize

    path = sanitize.write_suppressions(tmp_path / "supp.txt")
    text = path.read_text(encoding="utf-8")
    for entry, citation in sanitize.THEOREM_V2_SUPPRESSIONS:
        assert entry in text
        assert citation.splitlines()[0] in text


def test_tsan_parity_fuzz_clean():
    from repro.analysis import sanitize

    if not sanitize.toolchain_available(sanitize.THREAD_SELECTION):
        pytest.skip("TSan toolchain unavailable")
    result = sanitize.run_tsan_parity(seeds=(0,), n_threads=4, repeats=2)
    assert result.ok, result.detail
    assert not result.skipped
    assert "0 unsuppressed races" in result.detail


def test_tsan_inject_reported():
    from repro.analysis import sanitize

    if not sanitize.toolchain_available(sanitize.THREAD_SELECTION):
        pytest.skip("TSan toolchain unavailable")
    result = sanitize.run_tsan_inject()
    assert result.ok, result.detail
    assert result.sanitizer_report


def test_tsan_oracle_matches_sequential_backend_semantics():
    """The harness oracle is an independent replica of the level loop —
    pin its behavior on a case the Python tiers also agree on."""
    from repro.analysis import sanitize

    indptr, indices, matrix, fid = sanitize._tsan_fixture(3, n=120, q=4)
    got_matrix, got_fid, levels = sanitize._tsan_oracle(
        indptr, indices, matrix, fid, level_cap=32
    )
    assert levels > 0
    # Idempotent BFS: every finite cell holds the first-reach level, so
    # re-running from the result is a fixed point.
    again_matrix, _, _ = sanitize._tsan_oracle(
        indptr, indices, got_matrix, got_fid, level_cap=32
    )
    assert np.array_equal(again_matrix, got_matrix)


# ---------------------------------------------------------------------------
# `repro check` exit codes (the acceptance contract)
# ---------------------------------------------------------------------------
def test_run_check_clean_codebase_exits_zero():
    # Sanitizer stage exercised separately; two fuzz seeds keep this fast.
    code = run_check(skip_sanitize=True, fuzz_seeds=(0,), print_fn=lambda m: None)
    assert code == 0


def test_cli_check_inject_lint_exits_one(capsys):
    from repro.cli import main

    assert main(["check", "--inject", "lint"]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_cli_check_inject_race_exits_one(capsys):
    from repro.cli import main

    assert main(["check", "--inject", "race"]) == 1
    out = capsys.readouterr().out
    assert "caught" in out


def test_cli_check_inject_abi_exits_one(capsys):
    from repro.cli import main

    assert main(["check", "--inject", "abi"]) == 1
    out = capsys.readouterr().out
    assert "RPRABI" in out
    assert "caught" in out


def test_cli_check_inject_schedule_exits_one(capsys):
    from repro.cli import main

    assert main(["check", "--inject", "schedule"]) == 1
    out = capsys.readouterr().out
    assert "schedule-divergence" in out
    assert "caught" in out


def test_cli_check_inject_sanitizer_exits_one():
    from repro.analysis import sanitize
    from repro.cli import main

    if not sanitize.toolchain_available():
        pytest.skip("sanitizer toolchain unavailable")
    assert main(["check", "--inject", "sanitizer"]) == 1


def test_cli_check_inject_deadlock_exits_one(capsys):
    from repro.cli import main

    assert main(["check", "--inject", "deadlock"]) == 1
    out = capsys.readouterr().out
    assert "RPRCON01" in out
    assert "RPRCON02" in out
    assert "caught" in out


def test_cli_check_list_rules(capsys):
    from repro.cli import main

    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("RPR001", "RPR008", "RPR010", "RPR011", "RPR013",
                 "RPRCON01", "RPRCON04"):
        assert rule in out
