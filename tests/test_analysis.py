"""Tests for the ``repro.analysis`` package and the ``repro check`` gate.

Covers the shadow-memory invariant checker (CheckedBackend + WriteLog),
its self-validation against deliberately faulty backends, the
repo-specific AST lint rules, the sanitizer wiring, and the CLI exit
codes the CI ``check`` job relies on.
"""

import textwrap

import numpy as np
import pytest

from repro.analysis import (
    FAULT_MODES,
    CheckedBackend,
    FaultyBackend,
    InvariantViolationError,
    WriteLog,
    lint_source,
    run_lint,
)
from repro.analysis.check import run_check, run_faulty_validation
from repro.core.bottom_up import BottomUpSearch
from repro.graph.generators import WikiKBConfig, wiki_like_kb
from repro.parallel import (
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
)


def _kb(seed=3):
    config = WikiKBConfig(
        name=f"analysis-{seed}",
        seed=seed,
        n_papers=60,
        n_people=30,
        n_misc=30,
        n_venues=8,
        n_orgs=8,
    )
    graph, _ = wiki_like_kb(config)
    return graph


def _problem(graph, seed, q):
    from repro.core.activation import activation_levels
    from repro.core.weights import node_weights

    rng = np.random.default_rng(seed)
    n = graph.n_nodes
    sets = [
        np.unique(rng.integers(0, n, size=int(rng.integers(1, 6))))
        for _ in range(q)
    ]
    if seed % 2:
        activation = activation_levels(node_weights(graph), 3.0, 0.1)
    else:
        activation = np.zeros(n, dtype=np.int32)
    return sets, activation, int(rng.integers(1, 12))


def _run(backend, graph, sets, activation, k):
    with backend:
        return BottomUpSearch(graph, backend=backend).run(sets, activation, k)


# ---------------------------------------------------------------------------
# WriteLog
# ---------------------------------------------------------------------------
def test_write_log_partitions_batches_per_thread():
    import threading

    log = WriteLog()
    log.record_matrix(np.array([1, 2, 2]), value=1, level=0)

    def worker():
        log.record_matrix(np.array([2, 3]), value=1, level=0)
        log.record_frontier(np.array([7]), value=1, level=0)

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert log.n_threads() == 2
    assert log.n_batches() == 3
    cells, values = log.matrix_writes()
    # Duplicates preserved — racing writes are the point.
    assert sorted(cells.tolist()) == [1, 2, 2, 2, 3]
    assert set(values.tolist()) == {1}
    nodes, flag_values = log.frontier_writes()
    assert nodes.tolist() == [7]
    assert flag_values.tolist() == [1]


def test_write_log_copies_input_arrays():
    log = WriteLog()
    cells = np.array([5, 6], dtype=np.int64)
    log.record_matrix(cells, value=2, level=1)
    cells[0] = 99
    recorded, _ = log.matrix_writes()
    assert recorded.tolist() == [5, 6]


# ---------------------------------------------------------------------------
# CheckedBackend: clean backends pass, bitwise identical to sequential
# ---------------------------------------------------------------------------
def _contenders(graph):
    backends = {
        "threads": ThreadPoolBackend(n_threads=3),
        "vectorized": VectorizedBackend(),
        "vectorized-numpy": VectorizedBackend(native=False),
    }
    if ProcessPoolBackend.is_supported():
        backends["processes"] = ProcessPoolBackend(graph, n_processes=2)
    return backends


@pytest.mark.parametrize("seed", [0, 1, 4])
def test_checked_backends_clean_and_bitwise_identical(seed):
    graph = _kb(seed)
    q = 2 + seed % 7
    sets, activation, k = _problem(graph, seed * 31 + 7, q)
    reference = _run(
        CheckedBackend(SequentialBackend()), graph, sets, activation, k
    )
    for name, backend in _contenders(graph).items():
        checked = CheckedBackend(backend)
        result = _run(checked, graph, sets, activation, k)
        assert checked.levels_checked > 0, name
        assert not checked.violations, name
        assert np.array_equal(
            result.state.matrix, reference.state.matrix
        ), name
        assert sorted(result.central_nodes) == sorted(
            reference.central_nodes
        ), name
        assert result.depth == reference.depth, name


def test_adversarial_chunk_size_one_high_thread_count():
    """The satellite stress case: chunk size 1 maximizes racing chunks."""
    graph = _kb(7)
    sets, activation, k = _problem(graph, 71, q=5)
    reference = _run(SequentialBackend(), graph, sets, activation, k)
    # chunks_per_thread=64 with 8 threads splits every frontier down to
    # single-node chunks (frontiers here are far below 512 nodes).
    checked = CheckedBackend(
        ThreadPoolBackend(n_threads=8, chunks_per_thread=64)
    )
    result = _run(checked, graph, sets, activation, k)
    assert not checked.violations
    assert np.array_equal(result.state.matrix, reference.state.matrix)
    assert sorted(result.central_nodes) == sorted(reference.central_nodes)
    assert result.depth == reference.depth


def test_checked_backend_is_zero_cost_when_not_wrapped():
    """No log is attached unless a CheckedBackend interposes one."""
    graph = _kb(0)
    sets, activation, k = _problem(graph, 7, q=3)
    backend = VectorizedBackend()
    search = BottomUpSearch(graph, backend=backend)
    result = search.run(sets, activation, k)
    assert result.state.write_log is None


def test_checked_backend_delegates_name_tracer_counters():
    from repro.obs.tracing import Tracer

    inner = ThreadPoolBackend(n_threads=2)
    checked = CheckedBackend(inner)
    assert checked.name == f"checked:{inner.name}"
    tracer = Tracer(enabled=False)
    checked.tracer = tracer
    assert inner.tracer is tracer
    checked.last_counters = None
    assert inner.last_counters is None
    checked.close()


# ---------------------------------------------------------------------------
# FaultyBackend: the checker must catch every injected fault class
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mode", FAULT_MODES)
def test_faulty_backend_detected(mode):
    graph = _kb(2)
    sets, activation, k = _problem(graph, 2 * 31 + 7, q=4)
    faulty = FaultyBackend(mode=mode)
    checked = CheckedBackend(faulty, raise_on_violation=False)
    _run(checked, graph, sets, activation, k)
    assert faulty.faults_injected > 0
    assert checked.violations, f"fault {mode!r} went undetected"


def test_faulty_backend_raises_by_default():
    graph = _kb(2)
    sets, activation, k = _problem(graph, 2 * 31 + 7, q=4)
    with pytest.raises(InvariantViolationError) as exc_info:
        _run(
            CheckedBackend(FaultyBackend(mode="non-idempotent")),
            graph, sets, activation, k,
        )
    assert exc_info.value.violations


def test_faulty_validation_helper_all_modes():
    assert run_faulty_validation() == 0


def test_faulty_backend_rejects_unknown_mode():
    with pytest.raises(ValueError):
        FaultyBackend(mode="slow")


# ---------------------------------------------------------------------------
# CheckedBackend over the whole-level fast path
# ---------------------------------------------------------------------------
def test_checked_backend_verifies_whole_level_path():
    """Wrapping a run_level backend keeps the fast path *and* the checks."""
    graph = _kb(1)
    sets, activation, k = _problem(graph, 38, q=4)
    checked = CheckedBackend(VectorizedBackend())
    # The feature probe must see run_level through the wrapper, so the
    # bottom-up loop stays on the one-call-per-level path while checked.
    assert getattr(checked, "run_level", None) is not None
    result = _run(checked, graph, sets, activation, k)
    assert checked.levels_checked > 0
    assert not checked.violations
    reference = _run(SequentialBackend(), graph, sets, activation, k)
    assert np.array_equal(result.state.matrix, reference.state.matrix)


def test_checked_backend_hides_run_level_of_step_backends():
    """A step-only inner backend must not grow a phantom run_level."""
    checked = CheckedBackend(ThreadPoolBackend(n_threads=2))
    assert getattr(checked, "run_level", None) is None


class _EvilWholeLevel(VectorizedBackend):
    """Corrupts one matrix cell from inside the whole-level call."""

    def __init__(self):
        super().__init__()
        self.injected = False

    def run_level(self, graph, state, level, k, may_expand):
        outcome = super().run_level(graph, state, level, k, may_expand)
        if not self.injected:
            cells = np.flatnonzero(state.matrix.ravel() == level + 1)
            if len(cells):
                # A write of level + 3 violates the level-stamp invariant
                # (every write at level L stores exactly L + 1).
                state.matrix.ravel()[cells[0]] = level + 3
                self.injected = True
        return outcome


def test_checked_backend_detects_corrupted_whole_level():
    graph = _kb(1)
    sets, activation, k = _problem(graph, 38, q=4)
    evil = _EvilWholeLevel()
    with pytest.raises(InvariantViolationError) as exc_info:
        _run(CheckedBackend(evil), graph, sets, activation, k)
    assert evil.injected
    assert exc_info.value.violations


# ---------------------------------------------------------------------------
# Lint rules
# ---------------------------------------------------------------------------
def _rules_of(source):
    violations, _ = lint_source(textwrap.dedent(source))
    return {violation.rule for violation in violations}


def test_lint_clean_on_real_codebase():
    report = run_lint()
    assert report.ok, "\n".join(str(v) for v in report.violations)
    assert report.files_checked > 50


def test_rpr001_lock_in_hot_path():
    assert "RPR001" in _rules_of(
        """
        import threading
        from repro.instrumentation import hot_path

        @hot_path
        def kernel(chunk):
            lock = threading.Lock()
            with lock:
                return chunk
        """
    )


def test_rpr002_per_edge_loop_in_hot_path_but_column_range_allowed():
    flagged = _rules_of(
        """
        from repro.instrumentation import hot_path

        @hot_path
        def kernel(chunk, q):
            for node in chunk:
                pass
        """
    )
    assert "RPR002" in flagged
    clean = _rules_of(
        """
        from repro.instrumentation import hot_path

        @hot_path
        def kernel(chunk, q):
            for column in range(q):
                pass
        """
    )
    assert "RPR002" not in clean


def test_rpr003_dtype_conversions_in_hot_path():
    flagged = _rules_of(
        """
        import numpy as np
        from repro.instrumentation import hot_path

        @hot_path
        def kernel(graph):
            idx = graph.adj.indices.astype(np.int64)
            extra = np.zeros(4, dtype=np.int32)
            return idx, extra
        """
    )
    assert "RPR003" in flagged


def test_rpr004_unregistered_env_var():
    violations, _ = lint_source(
        'import os\nflag = os.environ.get("REPRO_TOTALLY_NEW_FLAG")\n'
    )
    assert {"RPR004"} == {v.rule for v in violations}
    # Registered ones pass.
    clean, _ = lint_source('import os\nflag = os.environ.get("REPRO_OBS")\n')
    assert not clean


def test_rpr005_span_without_parent_in_nested_function():
    flagged = _rules_of(
        """
        def expand(self, level):
            def run_chunk(chunk):
                with self.tracer.span("chunk"):
                    return chunk
            return run_chunk
        """
    )
    assert "RPR005" in flagged
    clean = _rules_of(
        """
        def expand(self, level):
            parent = self.tracer.current_span()
            def run_chunk(chunk):
                with self.tracer.span("chunk", parent=parent):
                    return chunk
            return run_chunk
        """
    )
    assert "RPR005" not in clean


def test_rpr006_bare_except():
    assert "RPR006" in _rules_of(
        """
        def f():
            try:
                return 1
            except:
                return 2
        """
    )


def test_rpr007_mutable_default():
    assert "RPR007" in _rules_of("def f(x, acc=[]):\n    return acc\n")
    assert "RPR007" not in _rules_of("def f(x, acc=None):\n    return acc\n")


def test_rpr008_wall_clock_time():
    assert "RPR008" in _rules_of(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    assert "RPR008" not in _rules_of(
        "import time\n\ndef f():\n    return time.perf_counter()\n"
    )


def test_rpr009_csr_copy_in_hot_path():
    flagged = _rules_of(
        """
        import numpy as np

        @hot_path
        def kernel(graph):
            a = np.asarray(graph.adj.indices)
            b = graph.adj.indptr.copy()
            c = np.ascontiguousarray(graph.out.labels)
            return a, b, c
        """
    )
    assert "RPR009" in flagged


def test_rpr009_allows_non_csr_copies_and_cold_code():
    clean = _rules_of(
        """
        import numpy as np

        @hot_path
        def kernel(graph, chunk):
            chunk = np.ascontiguousarray(chunk)
            return graph.adj.indices64

        def cold_path(graph):
            return np.asarray(graph.adj.indices)
        """
    )
    assert "RPR009" not in clean


def test_noqa_suppresses_specific_rule():
    source = "import time\n\ndef f():\n    return time.time()  # noqa: RPR008\n"
    violations, suppressed = lint_source(source)
    assert not violations
    assert [s.rule for s in suppressed] == ["RPR008"]
    # A noqa for a different rule does not suppress.
    other = "import time\n\ndef f():\n    return time.time()  # noqa: RPR001\n"
    violations, suppressed = lint_source(other)
    assert [v.rule for v in violations] == ["RPR008"]
    assert not suppressed


def test_hot_path_marker_is_inert():
    from repro.instrumentation import hot_path
    from repro.parallel.vectorized import fused_expand_chunk, pull_expand

    @hot_path
    def f(x):
        return x + 1

    assert f(1) == 2
    assert f.__hot_path__ is True
    # The real kernels are marked; the sequential oracle is not.
    assert getattr(fused_expand_chunk, "__hot_path__", False)
    assert getattr(pull_expand, "__hot_path__", False)
    from repro.parallel.sequential import expand_frontier_chunk

    assert not getattr(expand_frontier_chunk, "__hot_path__", False)


# ---------------------------------------------------------------------------
# Env-var registry pins
# ---------------------------------------------------------------------------
def test_sanitize_env_var_registered_and_pinned():
    from repro.obs import config
    from repro.parallel import _native

    assert config.ENV_SANITIZE == _native.ENV_SANITIZE


def test_dataset_cache_env_var_registered_and_pinned():
    from repro.bench import datasets
    from repro.obs import config

    assert config.ENV_DATASET_CACHE == datasets.CACHE_ENV_VAR


# ---------------------------------------------------------------------------
# Sanitizer wiring (gated on the toolchain; heavy paths live in CI)
# ---------------------------------------------------------------------------
def test_sanitize_selection_parsing():
    from repro.parallel._native import sanitize_cflags, sanitize_selection

    assert sanitize_selection("") == ()
    assert sanitize_selection("address") == ("address",)
    assert sanitize_selection("undefined,address") == ("address", "undefined")
    assert sanitize_cflags(()) == ()
    assert "-fsanitize=address,undefined" in sanitize_cflags(
        ("address", "undefined")
    )
    with pytest.raises(ValueError):
        sanitize_selection("adress")


def test_sanitize_env_typo_disables_native_tier(monkeypatch):
    from repro.parallel import _native

    monkeypatch.setenv(_native.ENV_SANITIZE, "bogus")
    assert _native.load_kernel() is None


def test_sanitized_smoke_clean():
    from repro.analysis import sanitize

    if not sanitize.toolchain_available():
        pytest.skip("sanitizer toolchain unavailable")
    result = sanitize.run_smoke()
    assert result.ok, result.detail
    assert not result.skipped


# ---------------------------------------------------------------------------
# `repro check` exit codes (the acceptance contract)
# ---------------------------------------------------------------------------
def test_run_check_clean_codebase_exits_zero():
    # Sanitizer stage exercised separately; two fuzz seeds keep this fast.
    code = run_check(skip_sanitize=True, fuzz_seeds=(0,), print_fn=lambda m: None)
    assert code == 0


def test_cli_check_inject_lint_exits_one(capsys):
    from repro.cli import main

    assert main(["check", "--inject", "lint"]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_cli_check_inject_race_exits_one(capsys):
    from repro.cli import main

    assert main(["check", "--inject", "race"]) == 1
    out = capsys.readouterr().out
    assert "caught" in out


def test_cli_check_inject_sanitizer_exits_one():
    from repro.analysis import sanitize
    from repro.cli import main

    if not sanitize.toolchain_available():
        pytest.skip("sanitizer toolchain unavailable")
    assert main(["check", "--inject", "sanitizer"]) == 1


def test_cli_check_list_rules(capsys):
    from repro.cli import main

    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("RPR001", "RPR008"):
        assert rule in out
