"""Cross-module integration tests and whole-pipeline invariants.

These tests exercise realistic end-to-end paths (generate → persist →
reload → index → search → serve) and check system-level invariants that
no single module owns: answer-coverage guarantees, cross-engine
consistency, and baseline-vs-oracle bounds.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BatchSearcher,
    KeywordSearchEngine,
    LockedDictEngine,
    SequentialBackend,
    VectorizedBackend,
)
from repro.baselines import BanksII, dpbf_optimal_cost
from repro.core.activation import activation_levels
from repro.core.weights import node_weights
from repro.graph.generators import random_graph
from repro.graph.io import load_graph, save_graph
from repro.service import SearchService
from repro.text.index_io import load_index, save_index
from repro.text.inverted_index import InvertedIndex


# ---------------------------------------------------------------------------
# Scenario: generate → persist → reload → search → serve
# ---------------------------------------------------------------------------
def test_full_persistence_pipeline(tmp_path, tiny_kb):
    graph, _ = tiny_kb
    index = InvertedIndex.from_graph(graph)

    graph_path = str(tmp_path / "kb")
    save_graph(graph, graph_path)
    save_index(index, graph_path + ".index")

    reloaded_graph = load_graph(graph_path)
    reloaded_index = load_index(graph_path + ".index")

    original = KeywordSearchEngine(
        graph, index=index, average_distance=3.0
    )
    restored = KeywordSearchEngine(
        reloaded_graph, index=reloaded_index, average_distance=3.0
    )
    for query in ("machine learning", "knowledge graph sparql"):
        a = original.search(query, k=5)
        b = restored.search(query, k=5)
        assert [x.graph.central_node for x in a.answers] == [
            x.graph.central_node for x in b.answers
        ]

    service = SearchService(restored)
    status, payload = service.handle_search("machine learning", k=3)
    assert status == 200
    json.dumps(payload)  # fully serializable


def test_batch_over_service_engine(tiny_kb):
    graph, _ = tiny_kb
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    batch = BatchSearcher(engine, n_workers=2).run(
        ["machine learning", "rdf sparql", "machine learning"], k=3
    )
    service = SearchService(engine)
    status, payload = service.handle_search("rdf sparql", k=3)
    assert status == 200
    assert batch.n_answered == 3
    batch_centrals = [
        a.graph.central_node for a in batch.results[1].answers
    ]
    service_centrals = [a["central_node"] for a in payload["answers"]]
    assert batch_centrals == service_centrals


# ---------------------------------------------------------------------------
# Whole-pipeline invariants over random instances
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), alpha=st.sampled_from([0.1, 0.4]),
       k=st.integers(1, 6))
def test_answer_invariants_on_random_graphs(seed, alpha, k):
    graph = random_graph(
        30, 90, seed=seed,
        vocabulary=("alpha", "beta", "gamma", "delta", "omega"),
        words_per_node=2,
    )
    engine = KeywordSearchEngine(
        graph, backend=VectorizedBackend(), average_distance=3.0
    )
    try:
        result = engine.search("alpha beta gamma", k=k, alpha=alpha)
    except Exception as error:  # EmptyQueryError only
        from repro import EmptyQueryError

        assert isinstance(error, EmptyQueryError)
        return
    q = len(result.keywords)
    assert len(result.answers) <= k
    scores = [answer.score for answer in result.answers]
    assert scores == sorted(scores)
    node_sets = []
    for answer in result.answers:
        central = answer.graph
        # Coverage: every keyword contributed by some member node.
        assert central.covers_all(q)
        # Connectivity: every member reaches the Central Node in the DAG.
        assert central.all_nodes_reach_central()
        # Compactness: the answer was level-cover pruned.
        assert central.pruned
        node_sets.append(frozenset(central.nodes))
    # Containment filtering: no answer strictly contains another.
    for i, a in enumerate(node_sets):
        for j, b in enumerate(node_sets):
            if i != j:
                assert not (a > b)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2000))
def test_three_stage_one_implementations_agree(seed):
    """Matrix+extraction, locked path-recording, and both backends."""
    graph = random_graph(
        24, 60, seed=seed,
        vocabulary=("alpha", "beta", "gamma"), words_per_node=1,
    )
    weights = node_weights(graph)
    index = InvertedIndex.from_graph(graph)
    activation = activation_levels(weights, 3.0, 0.1)
    sequential_engine = KeywordSearchEngine(
        graph, backend=SequentialBackend(), index=index, weights=weights,
        average_distance=3.0,
    )
    vectorized_engine = KeywordSearchEngine(
        graph, backend=VectorizedBackend(), index=index, weights=weights,
        average_distance=3.0,
    )
    locked_engine = LockedDictEngine(graph, weights, index, n_threads=1)
    query = "alpha beta"
    try:
        a = sequential_engine.search(query, k=5, alpha=0.1)
    except Exception:
        return
    b = vectorized_engine.search(query, k=5, alpha=0.1)
    c = locked_engine.search(query, activation, k=5)

    def signature(result):
        return [
            (x.graph.central_node, tuple(sorted(x.graph.nodes)),
             tuple(sorted(x.graph.edges)))
            for x in result.answers
        ]

    assert signature(a) == signature(b) == signature(c)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_banks_tree_never_beats_exact_gst(seed):
    """Any BANKS answer tree has at least the optimal Steiner edge count."""
    graph = random_graph(
        16, 40, seed=seed,
        vocabulary=("alpha", "beta", "gamma"), words_per_node=1,
    )
    index = InvertedIndex.from_graph(graph)
    banks = BanksII(graph, index)
    try:
        result = banks.search("alpha beta", k=3)
    except ValueError:
        return
    if not result.answers:
        return
    pairs = index.query_node_sets("alpha beta")
    sets = [nodes for _, nodes in pairs if len(nodes)]
    optimal = dpbf_optimal_cost(graph, sets)
    if optimal is None:
        return
    for tree in result.answers:
        assert len(tree.edges) >= optimal


def test_fig5_stanford_jeffrey_ullman_scenario(tiny_kb):
    """The paper's Fig. 5 level-cover example, end to end.

    Query {Stanford, Jeffrey, Ullman}: many people carry only "Jeffrey";
    level-cover prunes them, leaving an answer made of the Stanford
    University node and the Jeffrey Ullman node.
    """
    graph, _ = tiny_kb
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    result = engine.search("stanford jeffrey ullman", k=30)
    assert result.answers
    stanford_answers = [
        a.graph
        for a in result.answers
        if graph.node_text[a.graph.central_node].startswith(
            "Stanford University"
        )
    ]
    assert stanford_answers, "an answer centered at Stanford must exist"
    answer = stanford_answers[0]
    texts = {graph.node_text[node] for node in answer.nodes}
    assert "Jeffrey Ullman" in texts
    # Level-cover pruned every lone-"Jeffrey" carrier (Fig. 5's point).
    for node, columns in answer.keyword_contributions.items():
        text = graph.node_text[node]
        if "Jeffrey" in text and text != "Jeffrey Ullman":
            pytest.fail(f"lone-Jeffrey carrier survived pruning: {text!r}")


def test_depth_equals_max_hitting_level(fig1):
    """Lemma V.1, checked through the public engine API."""
    engine = KeywordSearchEngine(fig1.graph, backend=SequentialBackend())
    result = engine.search(
        "xml rdf sql", k=1, activation_override=fig1.activation
    )
    answer = result.answers[0].graph
    assert answer.depth == result.depth == fig1.expected_depth


def test_engine_results_are_deterministic(tiny_kb):
    graph, _ = tiny_kb
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    first = engine.search("machine learning data", k=10)
    second = engine.search("machine learning data", k=10)
    assert [a.graph.central_node for a in first.answers] == [
        a.graph.central_node for a in second.answers
    ]
    assert [a.score for a in first.answers] == [
        a.score for a in second.answers
    ]
