"""SearchState: matrix initialization, frontier enqueue, central detection."""

import numpy as np
import pytest

from repro.core.state import INFINITE_LEVEL, SearchState


def _state(n=6, sets=((0, 1), (2,)), activation=None):
    if activation is None:
        activation = np.zeros(n, dtype=np.int32)
    return SearchState.initialize(
        n, [np.array(s, dtype=np.int64) for s in sets], activation
    )


def test_initialize_sets_sources_and_flags():
    state = _state()
    assert state.n_nodes == 6
    assert state.n_keywords == 2
    assert state.matrix[0, 0] == 0
    assert state.matrix[1, 0] == 0
    assert state.matrix[2, 1] == 0
    assert state.matrix[3, 0] == INFINITE_LEVEL
    assert state.keyword_node[0] and state.keyword_node[2]
    assert not state.keyword_node[3]
    assert list(np.flatnonzero(state.f_identifier)) == [0, 1, 2]


def test_initialize_requires_keywords():
    with pytest.raises(ValueError):
        SearchState.initialize(3, [], np.zeros(3, dtype=np.int32))


def test_initialize_checks_activation_length():
    with pytest.raises(ValueError):
        SearchState.initialize(
            3, [np.array([0])], np.zeros(2, dtype=np.int32)
        )


def test_enqueue_moves_flags_to_frontier_and_clears():
    state = _state()
    count = state.enqueue_frontiers()
    assert count == 3
    assert list(state.frontier) == [0, 1, 2]
    assert state.f_identifier.sum() == 0
    # Second enqueue with no new flags drains to empty.
    assert state.enqueue_frontiers() == 0


def test_identify_central_nodes_requires_full_row():
    state = _state(sets=((0,), (0,)))
    state.enqueue_frontiers()
    found = state.identify_central_nodes(level=0)
    assert found == [(0, 0)]
    assert state.c_identifier[0] == 1
    assert state.n_central_nodes == 1


def test_identify_only_checks_frontier():
    state = _state(sets=((0,), (1,)))
    state.enqueue_frontiers()
    # Complete node 3's row manually, but it is not a frontier.
    state.matrix[3, 0] = 1
    state.matrix[3, 1] = 1
    assert state.identify_central_nodes(0) == []


def test_identify_is_idempotent():
    state = _state(sets=((0,), (0,)))
    state.enqueue_frontiers()
    assert state.identify_central_nodes(0) == [(0, 0)]
    # Re-flag the node; it must not be identified twice.
    state.f_identifier[0] = 1
    state.enqueue_frontiers()
    assert state.identify_central_nodes(1) == []
    assert state.n_central_nodes == 1


def test_identify_empty_frontier():
    state = _state()
    assert state.identify_central_nodes(0) == []


def test_matrix_is_one_byte_per_cell():
    state = _state(n=100, sets=((0,), (1,), (2,)))
    assert state.matrix.dtype == np.uint8
    assert state.matrix.nbytes == 100 * 3


def test_nbytes_accounts_matrix_and_flags():
    state = _state()
    total = state.nbytes()
    assert total >= state.matrix.nbytes + 2 * state.n_nodes


def test_nbytes_is_exact_sum_of_dynamic_arrays():
    """Table IV accounting: every per-query array counts, nothing else.

    The seed undercounted by omitting ``central_level`` (int16) and the
    per-query ``activation`` mapping (int32); pin the exact sum so any
    future array addition must be accounted for deliberately.
    """
    state = _state(n=50, sets=((0, 1), (2,), (3, 4, 5)))
    state.enqueue_frontiers()
    expected = sum(
        array.nbytes
        for array in (
            state.matrix,
            state.f_identifier,
            state.c_identifier,
            state.keyword_node,
            state.central_level,
            state.activation,
            state.finite_count,
            state.frontier,
        )
    )
    assert state.nbytes() == expected
    # central_level (2 B) and activation (4 B) are per-node and were the
    # seed's undercount; the total must reflect them.
    assert state.nbytes() >= state.matrix.nbytes + (1 + 1 + 1 + 2 + 4 + 4) * 50
