"""Answer redundancy metrics."""

import pytest

from repro.eval.redundancy import most_repeated_nodes, redundancy_stats


def test_fully_diverse_answers():
    stats = redundancy_stats([{1, 2}, {3, 4}, {5}])
    assert stats.n_answers == 3
    assert stats.max_node_repetition == 1
    assert stats.mean_pairwise_jaccard == 0.0
    assert stats.distinct_node_fraction == 1.0


def test_identical_answers():
    stats = redundancy_stats([{1, 2}, {1, 2}])
    assert stats.max_node_repetition == 2
    assert stats.mean_pairwise_jaccard == 1.0
    assert stats.distinct_node_fraction == 0.5


def test_paper_q11_style_repetition():
    """One node appearing in 16 of 20 answers (the paper's diagnosis)."""
    answers = [{99, i} for i in range(16)] + [{i, i + 100} for i in range(4)]
    stats = redundancy_stats(answers)
    assert stats.n_answers == 20
    assert stats.max_node_repetition == 16
    top = most_repeated_nodes(answers, k=1)
    assert top[0] == (99, 16)


def test_empty_and_single():
    empty = redundancy_stats([])
    assert empty.n_answers == 0
    assert empty.distinct_node_fraction == 1.0
    single = redundancy_stats([{1, 2, 3}])
    assert single.mean_pairwise_jaccard == 0.0
    assert single.max_node_repetition == 1


def test_partial_overlap_jaccard():
    stats = redundancy_stats([{1, 2}, {2, 3}])
    assert stats.mean_pairwise_jaccard == pytest.approx(1 / 3)


def test_empty_sets_skipped():
    stats = redundancy_stats([set(), {1}])
    assert stats.n_answers == 1
