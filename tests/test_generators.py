"""Synthetic KB generators and the Fig. 1 example."""

import numpy as np
import pytest

from repro.graph.generators import (
    ROLE_CLASS,
    ROLE_PAPER,
    ROLE_TOPIC,
    TOPIC_PHRASES,
    WikiKBConfig,
    chain_graph,
    fig1_example,
    grid_graph,
    preferential_attachment_graph,
    random_graph,
    star_graph,
    wiki2017_config,
    wiki2018_config,
    wiki_like_kb,
)
from repro.text.tokenizer import Tokenizer


def test_chain_and_star_shapes():
    assert chain_graph(5).n_edges == 4
    star = star_graph(7)
    assert star.n_nodes == 8
    assert star.in_degree(0) == 7


def test_grid_shape():
    grid = grid_graph(3, 4)
    assert grid.n_nodes == 12
    assert grid.n_edges == 3 * 3 + 2 * 4  # east + south edges


def test_random_graph_deterministic():
    a = random_graph(15, 30, seed=9)
    b = random_graph(15, 30, seed=9)
    assert list(a.adj.indices) == list(b.adj.indices)


def test_preferential_attachment_has_hub():
    graph = preferential_attachment_graph(100, edges_per_node=2, seed=4)
    degrees = graph.adj.degrees()
    assert degrees.max() >= 10  # heavy tail


def test_preferential_attachment_rejects_tiny():
    with pytest.raises(ValueError):
        preferential_attachment_graph(1)


def test_wiki_kb_roles_cover_all_nodes(tiny_kb):
    graph, meta = tiny_kb
    assert len(meta.roles) == graph.n_nodes
    assert meta.role_name(0) == "class"


def test_wiki_kb_summary_hub_structure(tiny_kb):
    graph, meta = tiny_kb
    human = meta.class_nodes["human"]
    counts = graph.in_label_counts(human)
    # One dominant in-edge label with many edges: a summary node.
    assert max(counts.values()) > 50
    assert len(counts) <= 2


def test_wiki_kb_topics_present(tiny_kb):
    graph, meta = tiny_kb
    assert set(meta.topic_nodes) == set(TOPIC_PHRASES)
    topic = meta.topic_nodes["data mining"]
    assert graph.node_text[topic] == "data mining"
    assert meta.roles[topic] == ROLE_TOPIC


def test_wiki_kb_gold_papers_contain_their_phrase(tiny_kb):
    graph, meta = tiny_kb
    tokenizer = Tokenizer()
    assert meta.gold_papers, "gold papers must be planted"
    for query_id, nodes in meta.gold_papers.items():
        assert nodes
        for node in nodes:
            assert meta.roles[node] == ROLE_PAPER
            # Every gold paper contains at least one full topic phrase.
            terms = set(tokenizer.unique_terms(graph.node_text[node]))
            assert any(
                set(tokenizer.tokenize(phrase)) <= terms
                for phrase in TOPIC_PHRASES
            )


def test_wiki_kb_decoys_do_not_contain_full_phrases(tiny_kb):
    graph, meta = tiny_kb
    tokenizer = Tokenizer()
    multiword = [p for p in TOPIC_PHRASES if len(p.split()) > 1]
    for node in meta.decoy_papers:
        terms = set(tokenizer.unique_terms(graph.node_text[node]))
        for phrase in multiword:
            phrase_terms = set(tokenizer.tokenize(phrase))
            assert not phrase_terms <= terms, (
                f"decoy {graph.node_text[node]!r} contains {phrase!r}"
            )


def test_wiki_kb_connected_mostly(tiny_kb):
    from repro.graph.algorithms import largest_component_nodes

    graph, _ = tiny_kb
    giant = largest_component_nodes(graph)
    assert len(giant) > 0.95 * graph.n_nodes


def test_wiki2018_larger_than_wiki2017():
    small = wiki2017_config()
    large = wiki2018_config()
    assert large.n_papers > small.n_papers
    assert large.name != small.name


def test_wiki_kb_deterministic():
    config = WikiKBConfig(name="det", seed=5, n_papers=60, n_people=20,
                          n_misc=20, n_venues=4, n_orgs=4,
                          gold_papers_per_query=1, decoy_papers_per_phrase=1)
    g1, m1 = wiki_like_kb(config)
    g2, m2 = wiki_like_kb(config)
    assert g1.n_nodes == g2.n_nodes
    assert g1.n_edges == g2.n_edges
    assert g1.node_text == g2.node_text
    assert m1.gold_papers == m2.gold_papers


def test_fig1_example_structure():
    example = fig1_example()
    graph = example.graph
    assert graph.n_nodes == 10
    assert example.central_node == 2
    # Keyword source sets match the node texts.
    for keyword, sources in zip(example.keywords, example.keyword_nodes):
        for node in sources:
            assert keyword.lower() in graph.node_text[node].lower()
    # v9 has four distinct hitting paths toward v2 (via 3, 6, 7, 8).
    v9_neighbors = set(int(n) for n in graph.neighbors(9))
    assert {3, 6, 7, 8} <= v9_neighbors
