"""GraphBuilder semantics."""

import pytest

from repro.graph.builder import GraphBuilder, graph_from_triples


def test_add_node_returns_sequential_ids():
    builder = GraphBuilder()
    assert builder.add_node("a") == 0
    assert builder.add_node("b") == 1
    assert builder.n_nodes == 2


def test_keyed_nodes_deduplicate():
    builder = GraphBuilder()
    first = builder.add_node("SQL", key="Q1")
    second = builder.add_node("ignored", key="Q1")
    assert first == second
    assert builder.n_nodes == 1
    assert builder.node_id_for_key("Q1") == first


def test_node_id_for_unknown_key_raises():
    with pytest.raises(KeyError):
        GraphBuilder().node_id_for_key("nope")


def test_add_edge_interns_predicates():
    builder = GraphBuilder()
    a = builder.add_node("a")
    b = builder.add_node("b")
    builder.add_edge(a, b, "instance of")
    builder.add_edge(b, a, "instance of")
    graph = builder.build()
    assert len(graph.predicates) == 1


def test_add_edge_accepts_predicate_id():
    builder = GraphBuilder()
    pid = builder.add_predicate("cites")
    a = builder.add_node("a")
    b = builder.add_node("b")
    builder.add_edge(a, b, pid)
    graph = builder.build()
    assert graph.predicate_name(0) == "cites"


def test_add_edge_rejects_unknown_predicate_id():
    builder = GraphBuilder()
    a = builder.add_node("a")
    b = builder.add_node("b")
    with pytest.raises(ValueError):
        builder.add_edge(a, b, 5)


def test_self_loops_rejected():
    builder = GraphBuilder()
    a = builder.add_node("a")
    with pytest.raises(ValueError):
        builder.add_edge(a, a, "p")


def test_dangling_endpoint_rejected():
    builder = GraphBuilder()
    a = builder.add_node("a")
    with pytest.raises(ValueError):
        builder.add_edge(a, 7, "p")


def test_duplicate_edges_deduplicated_by_default():
    builder = GraphBuilder()
    a = builder.add_node("a")
    b = builder.add_node("b")
    builder.add_edge(a, b, "p")
    builder.add_edge(a, b, "p")
    assert builder.build().n_edges == 1
    # Different predicate is a different triple.
    builder.add_edge(a, b, "q")
    assert builder.build().n_edges == 2


def test_duplicates_kept_when_requested():
    builder = GraphBuilder()
    a = builder.add_node("a")
    b = builder.add_node("b")
    builder.add_edge(a, b, "p")
    builder.add_edge(a, b, "p")
    assert builder.build(deduplicate=False).n_edges == 2


def test_graph_from_triples():
    graph = graph_from_triples(
        [
            ("sql", "instance of", "query language"),
            ("sparql", "instance of", "query language"),
            ("sparql", "used with", "rdf"),
        ],
        node_text={"sql": "SQL standard"},
    )
    assert graph.n_nodes == 4
    assert graph.n_edges == 3
    assert "SQL standard" in graph.node_text
    # Objects fall back to the key as text.
    assert "query language" in graph.node_text


def test_empty_builder_builds_empty_graph():
    graph = GraphBuilder().build()
    assert graph.n_nodes == 0
    assert graph.n_edges == 0
