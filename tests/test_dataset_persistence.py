"""Benchmark dataset disk caching."""

import numpy as np
import pytest

from repro.bench.datasets import (
    CACHE_ENV_VAR,
    _cached,
    build_dataset,
    clear_cache,
    load_dataset,
    save_dataset,
)
from repro.graph.generators import WikiKBConfig


@pytest.fixture()
def small_config():
    return WikiKBConfig(
        name="persist-test", seed=9, n_papers=60, n_people=25, n_misc=20,
        n_venues=3, n_orgs=3, gold_papers_per_query=1,
        decoy_papers_per_phrase=1,
    )


def test_save_load_roundtrip(tmp_path, small_config):
    dataset = build_dataset(small_config, distance_pairs=200)
    prefix = str(tmp_path / "ds")
    save_dataset(dataset, prefix)
    reloaded = load_dataset(prefix)
    assert reloaded.name == dataset.name
    assert reloaded.graph.n_nodes == dataset.graph.n_nodes
    assert reloaded.graph.n_edges == dataset.graph.n_edges
    assert np.array_equal(reloaded.metadata.roles, dataset.metadata.roles)
    assert reloaded.metadata.gold_papers == dataset.metadata.gold_papers
    assert reloaded.metadata.topic_nodes == dataset.metadata.topic_nodes
    assert reloaded.distance == dataset.distance
    assert np.allclose(reloaded.weights, dataset.weights)
    assert reloaded.index.n_terms == dataset.index.n_terms


def test_load_missing_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_dataset(str(tmp_path / "nope"))


def test_disk_cache_used_when_env_set(tmp_path, small_config, monkeypatch):
    monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
    clear_cache()
    first = _cached(small_config)
    # The dataset files must now exist on disk.
    assert (tmp_path / "persist-test.npz").exists()
    assert (tmp_path / "persist-test.dataset.json").exists()
    # A fresh in-process cache loads from disk instead of rebuilding.
    clear_cache()
    second = _cached(small_config)
    assert second is not first
    assert second.graph.n_nodes == first.graph.n_nodes
    assert second.metadata.gold_papers == first.metadata.gold_papers
    clear_cache()


def test_no_disk_cache_without_env(tmp_path, small_config, monkeypatch):
    monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
    clear_cache()
    _cached(small_config)
    assert not list(tmp_path.iterdir())
    clear_cache()


def test_loaded_dataset_searches_identically(tmp_path, small_config):
    from repro.bench.harness import METHOD_GPU_SIM, make_engine

    dataset = build_dataset(small_config, distance_pairs=200)
    prefix = str(tmp_path / "ds")
    save_dataset(dataset, prefix)
    reloaded = load_dataset(prefix)
    a = make_engine(dataset, METHOD_GPU_SIM).search("machine learning", k=3)
    b = make_engine(reloaded, METHOD_GPU_SIM).search("machine learning", k=3)
    assert [x.graph.central_node for x in a.answers] == [
        x.graph.central_node for x in b.answers
    ]
