"""BANKS-I / BANKS-II baselines."""

import numpy as np
import pytest

from repro.baselines.banks import (
    TERMINATED_BUDGET,
    BanksConfig,
    BanksI,
    BanksII,
)
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, star_graph
from repro.text.inverted_index import InvertedIndex


def _indexed(graph):
    return InvertedIndex.from_graph(graph)


def _chain_with_keywords():
    builder = GraphBuilder()
    texts = ["apple start", "plain", "middle stone", "plain two", "banana finish"]
    for text in texts:
        builder.add_node(text)
    for i in range(4):
        builder.add_edge(i, i + 1, "next")
    return builder.build()


def test_banks1_finds_middle_root():
    graph = _chain_with_keywords()
    banks = BanksI(graph, _indexed(graph))
    result = banks.search("apple banana", k=3)
    assert result.answers
    best = result.answers[0]
    # Best root is the midpoint: total path length 4 regardless of root,
    # so prestige and determinism decide; the tree must span 0..4.
    assert best.nodes >= {0, 4}
    assert best.score <= 4.0
    # Tree paths are genuine graph paths.
    for column, path in best.paths.items():
        assert path[0] == best.root
        for u, v in zip(path, path[1:]):
            assert v in set(int(x) for x in graph.neighbors(u))


def test_banks_answer_when_one_node_has_all_keywords():
    builder = GraphBuilder()
    builder.add_node("apple banana")
    builder.add_node("other")
    builder.add_edge(0, 1, "p")
    graph = builder.build()
    result = BanksI(graph, _indexed(graph)).search("apple banana", k=1)
    best = result.answers[0]
    assert best.root == 0
    assert best.paths[0] == [0]
    assert best.paths[1] == [0]
    assert best.score <= 0.0  # zero paths minus prestige bonus


def test_banks1_scores_are_sorted():
    graph = _chain_with_keywords()
    result = BanksI(graph, _indexed(graph)).search("apple banana", k=5)
    scores = [answer.score for answer in result.answers]
    assert scores == sorted(scores)


def test_banks2_also_finds_connecting_tree():
    graph = _chain_with_keywords()
    result = BanksII(graph, _indexed(graph)).search("apple stone banana", k=2)
    assert result.answers
    best = result.answers[0]
    assert {0, 2, 4} <= best.nodes


def test_banks2_prefers_high_degree_roots_on_ties():
    # A hub and a leaf both connect the two keyword carriers at equal
    # distance; prestige must favor the hub.
    builder = GraphBuilder()
    hub = builder.add_node("hub")
    left = builder.add_node("apple")
    right = builder.add_node("banana")
    leaf = builder.add_node("plain")
    builder.add_edge(left, hub, "p")
    builder.add_edge(right, hub, "p")
    builder.add_edge(left, leaf, "p")
    builder.add_edge(right, leaf, "p")
    for i in range(5):  # extra degree for the hub
        extra = builder.add_node(f"extra {i}")
        builder.add_edge(extra, hub, "p")
    graph = builder.build()
    result = BanksII(graph, _indexed(graph)).search("apple banana", k=4)
    connectors = [a.root for a in result.answers if a.root in (hub, leaf)]
    assert connectors[0] == hub


def test_banks_budget_termination():
    graph = star_graph(50)
    config = BanksConfig(max_pops=5)
    result = BanksII(graph, _indexed(graph)).search("leaf hub", k=2)
    budget = BanksII(graph, _indexed(graph), config).search("leaf hub", k=2)
    assert budget.terminated == TERMINATED_BUDGET
    assert budget.nodes_popped <= 6
    assert result.nodes_popped > budget.nodes_popped


def test_banks_unknown_query_raises():
    graph = chain_graph(3)
    with pytest.raises(ValueError):
        BanksI(graph, _indexed(graph)).search("zzz qqq")


def test_banks1_optimal_on_grid():
    """BANKS-I distances are Dijkstra distances: score is optimal."""
    from repro.graph.generators import grid_graph
    from repro.graph.algorithms import bfs_levels

    grid = grid_graph(3, 3)
    # Rename two corners so they carry keywords.
    grid.node_text[0] = "apple corner"
    grid.node_text[8] = "banana corner"
    index = InvertedIndex.from_graph(grid)
    result = BanksI(grid, index).search("apple banana", k=1)
    best = result.answers[0]
    d0 = bfs_levels(grid, [0])
    d8 = bfs_levels(grid, [8])
    optimal = min(int(d0[v] + d8[v]) for v in range(grid.n_nodes))
    # Score = path sum − prestige bonus; path sum must be optimal.
    path_sum = sum(len(p) - 1 for p in best.paths.values())
    assert path_sum == optimal


def test_banks2_exhaustive_equals_banks1_coverage():
    """Activation order changes the schedule, not final reachability."""
    graph = _chain_with_keywords()
    index = _indexed(graph)
    roots1 = {a.root for a in BanksI(graph, index).search("apple banana", k=10).answers}
    roots2 = {a.root for a in BanksII(graph, index).search("apple banana", k=10).answers}
    assert roots1 == roots2


def test_baseline_result_helpers():
    graph = _chain_with_keywords()
    result = BanksI(graph, _indexed(graph)).search("apple banana", k=2)
    assert len(result) == len(result.answers)
    node_sets = result.answer_node_sets()
    assert all(isinstance(s, set) for s in node_sets)
    described = result.answers[0].describe(graph.node_text)
    assert "AnswerTree" in described
