"""Concurrency-contract analyzer + runtime lock witness tests.

Covers the static lock-order pass (cycle / blocking / fork findings on
synthetic modules, a clean real repo), the witnessed lock factory
(exact acquisition counts under a thread hammer, plain-lock parity when
disabled), fork safety (held-at-fork events, post-fork lock
re-initialization), and the static/dynamic soundness check.
"""

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis import concurrency
from repro.analysis.check import _run_injection, run_concurrency_stage
from repro.analysis.lint import lint_source
from repro.obs import locks as locks_mod
from repro.obs.config import ENV_LOCK_WITNESS, lock_witness_enabled
from repro.obs.locks import (
    get_witness,
    make_condition,
    make_lock,
    make_rlock,
    make_striped_locks,
    register_lock_owner,
    reinit_locks_after_fork,
    reset_witness,
)

# ---------------------------------------------------------------------------
# Static pass: synthetic modules
# ---------------------------------------------------------------------------
_CYCLE_SOURCE = '''\
import threading

_A = threading.Lock()
_B = threading.Lock()


def forward():
    with _A:
        with _B:
            return 1


def backward():
    with _B:
        with _A:
            return 2
'''

_CLEAN_SOURCE = '''\
import threading

_A = threading.Lock()
_B = threading.Lock()


def one():
    with _A:
        with _B:
            return 1


def two():
    with _A:
        with _B:
            return 2
'''

_SLEEP_SOURCE = '''\
import threading
import time

_L = threading.Lock()


def refresh():
    with _L:
        time.sleep(0.5)
'''

_FORK_SOURCE = '''\
import os
import threading

_L = threading.Lock()


def spawn():
    with _L:
        os.fork()
'''

_SUPPRESSED_SLEEP_SOURCE = '''\
import threading
import time

_L = threading.Lock()


def refresh():
    with _L:
        time.sleep(0.5)  # noqa: RPRCON02 - startup-only warmup
'''

_INTERPROCEDURAL_SOURCE = '''\
import threading

_A = threading.Lock()
_B = threading.Lock()


def helper_b():
    with _B:
        return 1


def outer_ab():
    with _A:
        return helper_b()


def outer_ba():
    with _B:
        with _A:
            return 2
'''


def _analyze(source, modname="m", roots=()):
    return concurrency.analyze_sources(
        [(modname, "<memory>", source)], extra_roots=roots
    )


def test_two_lock_cycle_is_rprcon01():
    report = _analyze(_CYCLE_SOURCE, roots=["m.forward", "m.backward"])
    codes = {finding.code for finding in report.findings}
    assert codes == {"RPRCON01"}
    assert ("m._A", "m._B") in report.edges
    assert ("m._B", "m._A") in report.edges


def test_consistent_order_is_clean():
    report = _analyze(_CLEAN_SOURCE, roots=["m.one", "m.two"])
    assert report.findings == []
    assert ("m._A", "m._B") in report.edges
    assert ("m._B", "m._A") not in report.edges


def test_sleep_under_lock_is_rprcon02():
    report = _analyze(_SLEEP_SOURCE, roots=["m.refresh"])
    assert [finding.code for finding in report.findings] == ["RPRCON02"]
    assert "time.sleep" in report.findings[0].message
    assert "m._L" in report.findings[0].message


def test_fork_under_lock_is_rprcon03():
    report = _analyze(_FORK_SOURCE, roots=["m.spawn"])
    assert [finding.code for finding in report.findings] == ["RPRCON03"]
    assert "os.fork" in report.findings[0].message


def test_noqa_suppresses_exact_code():
    report = _analyze(_SUPPRESSED_SLEEP_SOURCE, roots=["m.refresh"])
    assert report.findings == []
    assert [finding.code for finding in report.suppressed] == ["RPRCON02"]


def test_interprocedural_cycle_through_helper():
    """A cycle only visible across a call edge: outer_ab holds A and
    calls helper_b (acquires B); outer_ba nests B then A."""
    report = _analyze(
        _INTERPROCEDURAL_SOURCE,
        roots=["m.outer_ab", "m.outer_ba"],
    )
    assert "RPRCON01" in {finding.code for finding in report.findings}


def test_unreachable_code_is_not_analyzed():
    # No roots match the synthetic module: the cycle is dead code.
    report = _analyze(_CYCLE_SOURCE)
    assert report.findings == []


# ---------------------------------------------------------------------------
# Static pass: the real repo
# ---------------------------------------------------------------------------
def test_repo_is_clean_and_locks_discovered():
    report = concurrency.run_concurrency_check()
    assert report.findings == [], [str(f) for f in report.findings]
    for expected in (
        "service.SearchService._lock",
        "obs.flight.FlightRecorder._lock",
        "obs.metrics.MetricsRegistry._lock",
        "obs.metrics._Instrument._lock",
        "obs.tracing.Tracer._lock",
        "parallel.locked.LockedDictEngine._frontier_lock",
        "analysis.writelog.WriteLog._registry_lock",
        "bench.loadgen._StatusCounts._lock",
    ):
        assert expected in report.locks, expected
    assert report.locks["parallel.locked.LockedDictEngine._locks"].kind == (
        "striped"
    )
    # The /statz consistent-snapshot nesting must be predicted.
    assert (
        "service.SearchService._lock",
        "obs.metrics.MetricsRegistry._lock",
    ) in report.edges


def test_check_stage_runs_clean():
    lines = []
    assert run_concurrency_stage(lines.append) == 0
    assert any("0 finding(s)" in line for line in lines)
    assert any("ordering edge(s) observed" in line for line in lines)


def test_inject_deadlock_is_caught():
    lines = []
    assert _run_injection("deadlock", lines.append) == 1
    joined = "\n".join(lines)
    assert "RPRCON01" in joined
    assert "RPRCON02" in joined


# ---------------------------------------------------------------------------
# Witness factory: parity and recording
# ---------------------------------------------------------------------------
def test_disabled_witness_returns_plain_primitives(monkeypatch):
    monkeypatch.delenv(ENV_LOCK_WITNESS, raising=False)
    assert not lock_witness_enabled()
    # Exact-type parity (the REPRO_OBS=0 PhaseTimer pattern): serving
    # must get the interpreter's own lock object, not a wrapper.
    assert type(make_lock("t.plain")) is type(threading.Lock())
    assert type(make_rlock("t.plain")) is type(threading.RLock())
    assert isinstance(make_condition("t.plain"), threading.Condition)
    stripes = make_striped_locks("t.striped", 4)
    assert len(stripes) == 4
    assert all(type(s) is type(threading.Lock()) for s in stripes)


def test_witness_hammer_exact_counts(monkeypatch):
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    witness = reset_witness()
    outer = make_lock("t.hammer.outer")
    inner = make_lock("t.hammer.inner")
    n_threads, n_iter = 4, 50

    def work(_):
        for _ in range(n_iter):
            with outer:
                with inner:
                    pass

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(work, range(n_threads)))

    total = n_threads * n_iter
    assert witness.acquisition_count("t.hammer.outer") == total
    assert witness.acquisition_count("t.hammer.inner") == total
    assert witness.edges()[("t.hammer.outer", "t.hammer.inner")] == total
    # Consistent ordering: the reverse edge must not exist (no false
    # cycle from the hammer).
    assert ("t.hammer.inner", "t.hammer.outer") not in witness.edges()
    assert witness.max_held >= 2
    assert witness.held_now() == {}


def test_striped_locks_share_one_identity(monkeypatch):
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    witness = reset_witness()
    stripes = make_striped_locks("t.stripes", 8)
    for stripe in stripes:
        with stripe:
            pass
    assert witness.acquisition_count("t.stripes") == 8
    # Nested distinct stripes are re-entry on the same logical lock:
    # no ordering edge.
    with stripes[0]:
        with stripes[1]:
            pass
    assert ("t.stripes", "t.stripes") not in witness.edges()


def test_locks_created_before_reset_record_to_current_witness(monkeypatch):
    """The witness is resolved per operation, not captured at lock
    construction: module-global locks (default registry, global tracer)
    built before a reset must still feed edges into the new witness."""
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    reset_witness()
    outer = make_lock("t.stale.outer")
    inner = make_lock("t.stale.inner")
    witness = reset_witness()  # both locks predate this witness
    with outer:
        with inner:
            pass
    assert witness.acquisition_count("t.stale.outer") == 1
    assert ("t.stale.outer", "t.stale.inner") in witness.edges()


def test_witnessed_condition_records(monkeypatch):
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    witness = reset_witness()
    condition = make_condition("t.cond")
    with condition:
        condition.notify_all()
    assert witness.acquisition_count("t.cond") == 1


# ---------------------------------------------------------------------------
# Soundness: observed edges must be statically predicted
# ---------------------------------------------------------------------------
def test_witness_exercise_is_sound():
    witness = concurrency.run_witness_exercise()
    static = concurrency.run_concurrency_check()
    observed = {
        edge
        for edge in witness.edges()
        if edge[0] in static.locks and edge[1] in static.locks
    }
    # The /statz consistent snapshot guarantees at least one real
    # multi-lock ordering (acceptance criterion).
    assert observed, "witnessed exercise saw no multi-lock ordering"
    assert concurrency.verify_witness(witness, static) == []
    assert observed <= set(static.edges)


def test_verify_witness_flags_unpredicted_edge(monkeypatch):
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    witness = reset_witness()
    # Two locks the static table knows, nested in an order the clean
    # source never exercises.
    static = _analyze(_CLEAN_SOURCE, roots=["m.one", "m.two"])
    lock_b = make_lock("m._B")
    lock_a = make_lock("m._A")
    with lock_b:
        with lock_a:
            pass
    findings = concurrency.verify_witness(witness, static)
    assert [finding.code for finding in findings] == ["RPRCON04"]
    assert "m._B -> m._A" in findings[0].message


def test_verify_witness_ignores_unknown_locks(monkeypatch):
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    witness = reset_witness()
    static = _analyze(_CLEAN_SOURCE, roots=["m.one", "m.two"])
    with make_lock("test.only.x"):
        with make_lock("test.only.y"):
            pass
    assert concurrency.verify_witness(witness, static) == []


# ---------------------------------------------------------------------------
# Fork safety
# ---------------------------------------------------------------------------
def test_reinit_replaces_registered_locks(monkeypatch):
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    reset_witness()

    class Owner:
        def __init__(self):
            self._lock = make_lock("t.owner._lock")
            register_lock_owner(self, "_lock")

    owner = Owner()
    old = owner._lock
    old.acquire()  # simulate the parent-side holder
    assert reinit_locks_after_fork() >= 1
    assert owner._lock is not old
    assert owner._lock.name == "t.owner._lock"  # identity preserved
    assert owner._lock.acquire(timeout=1)  # fresh and unlocked
    owner._lock.release()
    old.release()


def test_fresh_lock_like_preserves_flavor(monkeypatch):
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    reset_witness()
    witnessed = make_lock("t.flavor")
    fresh = locks_mod._fresh_lock_like(witnessed)
    assert type(fresh) is type(witnessed)
    assert fresh.name == "t.flavor"
    monkeypatch.delenv(ENV_LOCK_WITNESS)
    plain = threading.Lock()
    assert type(locks_mod._fresh_lock_like(plain)) is type(plain)
    rlock = threading.RLock()
    assert type(locks_mod._fresh_lock_like(rlock)) is type(rlock)


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="os.fork unavailable on this platform"
)
def test_fork_records_held_locks_and_child_reinits(monkeypatch):
    monkeypatch.setenv(ENV_LOCK_WITNESS, "1")
    witness = reset_witness()

    class Owner:
        def __init__(self):
            self._lock = make_lock("t.fork._lock")
            register_lock_owner(self, "_lock")

    owner = Owner()
    acquired = threading.Event()
    release = threading.Event()

    def holder():
        with owner._lock:
            acquired.set()
            release.wait(10)

    thread = threading.Thread(target=holder, daemon=True)
    thread.start()
    assert acquired.wait(10)
    try:
        pid = os.fork()
        if pid == 0:
            # Child: the holder thread does not exist here. Without the
            # after_in_child re-init this acquire would deadlock on the
            # inherited locked mutex.
            ok = owner._lock.acquire(True, 5)
            os._exit(0 if ok else 1)
        _, status = os.waitpid(pid, 0)
    finally:
        release.set()
        thread.join(10)
    assert os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0
    events = witness.held_at_fork_events()
    assert any("t.fork._lock" in event for event in events)


def test_global_tracer_lock_reinit_callback_registered():
    from repro.obs import tracing

    # The module registered a fork callback for _GLOBAL_LOCK; running
    # the child-side re-init must replace it with an unlocked lock.
    tracing._GLOBAL_LOCK.acquire()
    try:
        reinit_locks_after_fork()
        assert tracing._GLOBAL_LOCK.acquire(timeout=1)
        tracing._GLOBAL_LOCK.release()
    finally:
        pass


# ---------------------------------------------------------------------------
# RPR013 lint
# ---------------------------------------------------------------------------
def test_rpr013_flags_function_local_lock():
    violations, _ = lint_source(
        "import threading\n"
        "def f():\n"
        "    lock = threading.Lock()\n"
        "    return lock\n",
        relative_to_package="service.py",
    )
    assert [v.rule for v in violations] == ["RPR013"]


def test_rpr013_allows_attributes_and_module_constants():
    violations, _ = lint_source(
        "import threading\n"
        "_GLOBAL = threading.Lock()\n"
        "class C:\n"
        "    SHARED = threading.RLock()\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n",
        relative_to_package="service.py",
    )
    assert violations == []


def test_rpr013_exempts_lock_factory_module():
    violations, _ = lint_source(
        "import threading\n"
        "def make():\n"
        "    inner = threading.Lock()\n"
        "    return inner\n",
        relative_to_package="obs/locks.py",
    )
    assert violations == []


def test_rpr013_in_rule_catalogue():
    from repro.analysis.lint import RULES

    assert "RPR013" in RULES
    assert "RPRCON01" in concurrency.CONCURRENCY_RULES
