"""r-clique baseline."""

import numpy as np
import pytest

from repro.baselines.rclique import RClique, RCliqueConfig
from repro.graph.builder import GraphBuilder
from repro.text.inverted_index import InvertedIndex


def _keyword_graph():
    """apple - m1 - m2 - banana, plus a far-away banana carrier."""
    builder = GraphBuilder()
    texts = ["apple here", "mid one", "mid two", "banana near",
             "far", "farther", "banana far"]
    for text in texts:
        builder.add_node(text)
    for i in range(3):
        builder.add_edge(i, i + 1, "p")
    builder.add_edge(3, 4, "p")
    builder.add_edge(4, 5, "p")
    builder.add_edge(5, 6, "p")
    return builder.build()


def _rclique(graph, r):
    index = InvertedIndex.from_graph(graph)
    return RClique(graph, index, RCliqueConfig(r=r))


def test_finds_clique_when_r_allows():
    graph = _keyword_graph()
    # apple(0) and banana(3) are 3 hops apart; a center within r/2 of
    # both exists for r >= 6 under the conservative center test... use 6.
    result = _rclique(graph, r=6).search("apple banana", k=3)
    assert result.answers
    best = result.answers[0]
    assert {0, 3} <= best.nodes


def test_small_r_returns_nothing():
    graph = _keyword_graph()
    result = _rclique(graph, r=1).search("apple banana", k=3)
    assert result.answers == []


def test_larger_r_grows_candidate_set():
    graph = _keyword_graph()
    tight = _rclique(graph, r=2).n_feasible_centers("apple banana")
    loose = _rclique(graph, r=12).n_feasible_centers("apple banana")
    assert loose >= tight
    assert loose > 0


def test_trees_pick_nearest_carriers():
    graph = _keyword_graph()
    result = _rclique(graph, r=8).search("apple banana", k=1)
    best = result.answers[0]
    # The nearest banana carrier (node 3, not node 6) is chosen.
    leaves = {best.leaf_of(column) for column in best.paths}
    assert 6 not in leaves


def test_same_clique_from_different_centers_deduplicated():
    builder = GraphBuilder()
    builder.add_node("apple banana")  # one node carries both keywords
    builder.add_node("other")
    builder.add_edge(0, 1, "p")
    graph = builder.build()
    result = _rclique(graph, r=4).search("apple banana", k=5)
    assert len(result.answers) == 1
    assert result.answers[0].score == 0.0


def test_unmatched_query_raises():
    graph = _keyword_graph()
    with pytest.raises(ValueError):
        _rclique(graph, r=4).search("zzz")


def test_single_keyword_cliques_are_carriers():
    graph = _keyword_graph()
    result = _rclique(graph, r=2).search("banana", k=5)
    roots = {answer.root for answer in result.answers}
    assert roots == {3, 6}


def test_answer_count_on_kb(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    searcher = RClique(tiny_graph, index, RCliqueConfig(r=4))
    result = searcher.search("machine learning data", k=10)
    # On a well-connected KB a moderate r yields plenty of answers.
    assert len(result.answers) == 10
    scores = [answer.score for answer in result.answers]
    assert scores == sorted(scores)
