"""Graph serialization and text-format loaders."""

import numpy as np
import pytest

from repro.graph.generators import random_graph
from repro.graph.io import (
    dataset_cache_path,
    dump_tsv_triples,
    load_graph,
    load_tsv_triples,
    save_graph,
)


def _graphs_equal(a, b):
    assert a.n_nodes == b.n_nodes
    assert a.n_edges == b.n_edges
    assert a.node_text == b.node_text
    assert a.predicates.to_list() == b.predicates.to_list()
    assert np.array_equal(a.adj.indptr, b.adj.indptr)
    assert np.array_equal(a.adj.indices, b.adj.indices)
    assert np.array_equal(a.adj.labels, b.adj.labels)
    assert np.array_equal(a.out.indices, b.out.indices)
    assert np.array_equal(a.inc.indices, b.inc.indices)


def test_npz_roundtrip(tmp_path, random20):
    path = str(tmp_path / "graph.npz")
    save_graph(random20, path)
    _graphs_equal(random20, load_graph(path))


def test_npz_roundtrip_without_extension(tmp_path, random20):
    path = str(tmp_path / "graph")
    save_graph(random20, path)
    _graphs_equal(random20, load_graph(path))


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_graph(str(tmp_path / "missing.npz"))


def test_load_rejects_bad_version(tmp_path, random20):
    import json

    path = str(tmp_path / "graph.npz")
    save_graph(random20, path)
    meta_path = str(tmp_path / "graph.meta.json")
    with open(meta_path) as handle:
        meta = json.load(handle)
    meta["version"] = 99
    with open(meta_path, "w") as handle:
        json.dump(meta, handle)
    with pytest.raises(ValueError):
        load_graph(path)


def test_tsv_load():
    import tempfile, os

    content = (
        "# comment line\n"
        "q1\tinstance of\tq2\n"
        "\n"
        "q3\tcites\tq1\n"
    )
    with tempfile.NamedTemporaryFile(
        "w", suffix=".tsv", delete=False
    ) as handle:
        handle.write(content)
        path = handle.name
    try:
        graph = load_tsv_triples(path)
        assert graph.n_nodes == 3
        assert graph.n_edges == 2
        assert "instance of" in graph.predicates
    finally:
        os.unlink(path)


def test_tsv_malformed_line_reports_position(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("a\tb\tc\nbroken line without tabs\n")
    with pytest.raises(ValueError, match=":2:"):
        load_tsv_triples(str(path))


def test_tsv_dump_and_reload(tmp_path):
    graph = random_graph(10, 20, seed=5)
    path = str(tmp_path / "dump.tsv")
    count = dump_tsv_triples(graph, path)
    assert count == graph.n_edges
    reloaded = load_tsv_triples(path)
    assert reloaded.n_edges == graph.n_edges
    assert reloaded.n_nodes == len(
        {n for s, t, _ in graph.edge_list() for n in (s, t)}
    )


def test_dataset_cache_path(tmp_path):
    path, exists = dataset_cache_path(str(tmp_path / "cache"), "wiki")
    assert not exists
    assert path.endswith("wiki.npz")
    graph = random_graph(5, 8, seed=1)
    save_graph(graph, path)
    _, exists_now = dataset_cache_path(str(tmp_path / "cache"), "wiki")
    assert exists_now
