"""Execute the runnable examples embedded in docstrings.

Several modules carry ``>>>`` examples; these must stay correct as the
code evolves, so they run as part of the suite.
"""

import doctest

import pytest

import repro.graph.builder
import repro.graph.labels
import repro.text.query_parser
import repro.text.stemmer
import repro.text.tokenizer

_MODULES = [
    repro.graph.builder,
    repro.graph.labels,
    repro.text.query_parser,
    repro.text.stemmer,
    repro.text.tokenizer,
]


@pytest.mark.parametrize(
    "module", _MODULES, ids=[m.__name__ for m in _MODULES]
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
