"""Query parsing: quoted phrases and keyword-group resolution."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.text.inverted_index import InvertedIndex
from repro.text.query_parser import parse_query, resolve_keyword_groups


def test_parse_plain_query():
    parsed = parse_query("xml rdf sql")
    assert parsed.terms == ("xml", "rdf", "sql")
    assert parsed.phrases == ()
    assert not parsed.is_empty


def test_parse_quoted_phrase():
    parsed = parse_query('xml "gradient descent" sql')
    assert parsed.terms == ("xml", "sql")
    assert parsed.phrases == (("gradient", "descent"),)


def test_parse_multiple_phrases():
    parsed = parse_query('"a b" "c d e"')
    assert parsed.terms == ()
    assert parsed.phrases == (("a", "b"), ("c", "d", "e"))


def test_parse_empty_quotes_ignored():
    parsed = parse_query('"" xml')
    assert parsed.terms == ("xml",)
    assert parsed.phrases == ()


def test_parse_unbalanced_quote_degrades_gracefully():
    parsed = parse_query('xml "gradient descent')
    assert parsed.terms == ("xml", "gradient", "descent")
    assert parsed.phrases == ()


def test_parse_empty_query():
    assert parse_query("").is_empty
    assert parse_query("   ").is_empty


def _index():
    builder = GraphBuilder()
    texts = [
        "gradient descent methods",   # 0: full phrase
        "gradient boosting",          # 1: split word
        "steepest descent",           # 2: split word
        "xml schema",                 # 3
    ]
    for text in texts:
        builder.add_node(text)
    builder.add_edge(0, 1, "p")
    return InvertedIndex.from_graph(builder.build())


def test_resolve_free_terms():
    groups = resolve_keyword_groups(parse_query("gradient xml"), _index())
    labels = [label for label, _ in groups]
    assert labels == ["gradient", "xml"]
    assert list(groups[0][1]) == [0, 1]
    assert list(groups[1][1]) == [3]


def test_resolve_phrase_intersects_postings():
    groups = resolve_keyword_groups(
        parse_query('"gradient descent"'), _index()
    )
    assert len(groups) == 1
    label, nodes = groups[0]
    assert label == "gradient+descent"
    # Only node 0 contains both words.
    assert list(nodes) == [0]


def test_resolve_phrase_with_no_cooccurrence_is_empty():
    groups = resolve_keyword_groups(
        parse_query('"boosting descent"'), _index()
    )
    assert len(groups) == 1
    assert len(groups[0][1]) == 0


def test_resolve_deduplicates_terms_and_phrases():
    groups = resolve_keyword_groups(
        parse_query('xml xml "gradient descent" "gradient descent"'),
        _index(),
    )
    assert [label for label, _ in groups] == ["xml", "gradient+descent"]


def test_resolve_stopword_only_phrase_dropped():
    groups = resolve_keyword_groups(parse_query('"the of"'), _index())
    assert groups == []


def test_engine_phrase_query_end_to_end(tiny_kb):
    from repro import KeywordSearchEngine, VectorizedBackend

    graph, _ = tiny_kb
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    plain = engine.search("gradient descent", k=5)
    phrased = engine.search('"gradient descent"', k=5)
    # The phrase query runs one keyword group instead of two.
    assert len(plain.keywords) == 2
    assert phrased.keywords == ("gradient+descent",)
    # Every phrased answer's keyword carriers contain the whole phrase.
    for answer in phrased.answers:
        carriers = answer.graph.keyword_nodes()
        assert carriers
        for node in carriers:
            text = graph.node_text[node].lower()
            assert "gradient" in text and "descent" in text
