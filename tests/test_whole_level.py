"""Whole-level kernel: one call per bottom-up level, three-way parity.

The whole-level fast path (``VectorizedBackend.run_level``) fuses
frontier compaction, Central-Node identification, expansion and the
incremental finite-count update into one native call (or an equivalent
NumPy composition). Algorithm 1's loop semantics must be preserved
*exactly*: these tests pin the native path, the NumPy fallback and the
classic step-by-step loop (``REPRO_WHOLE_LEVEL=0``) to bitwise-equal
states, and pin the native/NumPy work-counter parity (the
``duplicates_elided`` regression: the native tier must count elided
duplicate writes exactly like the NumPy tier, not report zero).
"""

import numpy as np
import pytest

from repro.core.bottom_up import BottomUpSearch
from repro.core.state import TERMINATED_ENOUGH_ANSWERS
from repro.graph.generators import WikiKBConfig, wiki_like_kb
from repro.obs.config import ENV_WHOLE_LEVEL
from repro.parallel import SequentialBackend, VectorizedBackend

from conftest import zero_activation


def _fuzz_kb(seed: int):
    config = WikiKBConfig(
        name=f"whole-{seed}",
        seed=seed,
        n_papers=60,
        n_people=30,
        n_misc=30,
        n_venues=8,
        n_orgs=8,
    )
    graph, _ = wiki_like_kb(config)
    return graph


def _fuzz_problem(graph, seed: int, q: int = 5):
    rng = np.random.default_rng(seed)
    n = graph.n_nodes
    sets = [
        np.unique(rng.integers(0, n, size=int(rng.integers(1, 5))))
        for _ in range(q)
    ]
    if seed % 2:
        activation = rng.integers(0, 4, size=n).astype(np.int32)
    else:
        activation = zero_activation(graph)
    k = int(rng.integers(1, 10))
    return sets, activation, k


def _signature(result):
    return (
        result.state.matrix.tobytes(),
        sorted(result.central_nodes),
        result.state.central_level.tobytes(),
        result.depth,
        result.terminated,
        result.state.finite_count.tolist(),
    )


@pytest.mark.parametrize("seed", range(8))
def test_whole_level_three_way_parity(seed, monkeypatch):
    """Native run_level == NumPy run_level == classic step loop."""
    graph = _fuzz_kb(seed)
    sets, activation, k = _fuzz_problem(graph, seed * 13 + 1)

    native = BottomUpSearch(graph, backend=VectorizedBackend()).run(
        sets, activation, k
    )
    fallback = BottomUpSearch(
        graph, backend=VectorizedBackend(native=False)
    ).run(sets, activation, k)
    monkeypatch.setenv(ENV_WHOLE_LEVEL, "0")
    stepped = BottomUpSearch(graph, backend=VectorizedBackend()).run(
        sets, activation, k
    )
    monkeypatch.delenv(ENV_WHOLE_LEVEL)
    reference = BottomUpSearch(graph, backend=SequentialBackend()).run(
        sets, activation, k
    )

    assert _signature(native) == _signature(reference)
    assert _signature(fallback) == _signature(reference)
    assert _signature(stepped) == _signature(reference)


@pytest.mark.parametrize("seed", range(6))
def test_duplicates_elided_native_numpy_parity(seed):
    """Regression: the native whole-level tier must report the same
    duplicate-write count as the NumPy tier (it once reported 0).

    Both sides are pinned to the push discipline (``pull_ratio=0``):
    a pull level legitimately gathers different edges and elides no
    scatter duplicates by construction, and it announces itself via the
    ``pull_levels`` counter — work counters describe work actually done,
    so parity is only defined direction-for-direction.
    """
    from repro.bench.kernel_microbench import _CountingVectorizedBackend
    from repro.parallel.vectorized import _native_kernel

    if _native_kernel() is None:  # pragma: no cover
        pytest.skip("native kernel unavailable")
    graph = _fuzz_kb(seed + 50)
    sets, activation, k = _fuzz_problem(graph, seed * 7 + 3)

    def total_counters(backend):
        backend.pull_ratio = 0
        BottomUpSearch(graph, backend=backend).run(sets, activation, k)
        assert backend.totals.pull_levels == 0
        return {
            "edges_gathered": backend.totals.edges_gathered,
            "pairs_hit": backend.totals.pairs_hit,
            "duplicates_elided": backend.totals.duplicates_elided,
        }

    native = total_counters(_CountingVectorizedBackend())
    fallback = total_counters(_CountingVectorizedBackend(native=False))
    assert native == fallback
    assert native["edges_gathered"] > 0
    assert native["duplicates_elided"] > 0


def test_run_level_respects_k_and_termination():
    """run_level must stop expanding once k Central Nodes exist, and the
    loop must report the same termination reason as the classic path."""
    graph = _fuzz_kb(77)
    sets, activation, k = _fuzz_problem(graph, 42, q=3)
    result = BottomUpSearch(graph, backend=VectorizedBackend()).run(
        sets, activation, 1
    )
    if result.terminated == TERMINATED_ENOUGH_ANSWERS:
        assert len(result.central_nodes) >= 1
    reference = BottomUpSearch(graph, backend=SequentialBackend()).run(
        sets, activation, 1
    )
    assert result.terminated == reference.terminated
    assert sorted(result.central_nodes) == sorted(reference.central_nodes)


def test_whole_level_env_toggle_registered():
    """RPR004: the switch must be a registered, documented env var."""
    import inspect

    from repro.analysis.lint import registered_env_vars
    from repro.obs import config
    from repro.obs.config import whole_level_enabled

    registered = registered_env_vars(inspect.getsource(config))
    assert ENV_WHOLE_LEVEL in registered
    assert config.ENV_POOL_PERSIST in registered
    assert config.ENV_POOL_WORKERS in registered
    assert isinstance(whole_level_enabled(), bool)
