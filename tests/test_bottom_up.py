"""Bottom-up search: the Fig. 4 trace and top-(k,d) semantics."""

import numpy as np
import pytest

from repro.core.bottom_up import (
    TERMINATED_ENOUGH_ANSWERS,
    TERMINATED_FRONTIER_EMPTY,
    TERMINATED_LEVEL_CAP,
    BottomUpSearch,
)
from repro.core.state import INFINITE_LEVEL
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph

from conftest import reference_hitting_levels, state_hitting_levels, zero_activation


def _sets(*groups):
    return [np.array(g, dtype=np.int64) for g in groups]


def test_fig4_trace_exact(fig1):
    """Example 4: hitting levels and the depth-4 Central Node at v2."""
    searcher = BottomUpSearch(fig1.graph)
    result = searcher.run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1
    )
    state = result.state
    assert result.terminated == TERMINATED_ENOUGH_ANSWERS
    assert result.central_nodes == [(2, 4)]
    assert result.depth == 4
    matrix = state.matrix
    # B0 = XML from v9: h(v6)=h(v7)=h(v8)=h(v3)=2 (Example 4).
    assert matrix[6, 0] == 2
    assert matrix[7, 0] == 2
    assert matrix[8, 0] == 2
    assert matrix[3, 0] == 2
    # v2 hit at level 4 by all three instances.
    assert matrix[2, 0] == 4
    assert matrix[2, 1] == 4
    assert matrix[2, 2] == 4
    # v1 (SQL source) is hit by RDF at 1 + its own activation wait:
    # v4/v5 expand at level 1, hitting v2's neighbors... v1 is not
    # adjacent to v4/v5, so it stays unhit by B1 until through v2/v0.
    assert matrix[1, 2] == 0  # its own keyword


def test_no_expansion_at_level_zero_when_inactive(fig1):
    """Fig. 4a: only v4 is active at level 0, and v3 blocks (a3 = 2)."""
    searcher = BottomUpSearch(fig1.graph)
    # Run with lmax=0 so only level 0 is processed (no expansion beyond).
    result = BottomUpSearch(fig1.graph, lmax=1).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=99
    )
    matrix = result.state.matrix
    # After level-0 and level-1 expansion, v3 may be hit at level 2 at
    # most; nothing can be hit at level 1 because every non-source
    # neighbor is inactive at level 1 except... v3 has a3=2 > 1.
    hit_levels = matrix[matrix != INFINITE_LEVEL]
    assert (hit_levels <= 2).all()


def test_chain_hitting_levels_without_activation():
    chain = chain_graph(5)
    searcher = BottomUpSearch(chain)
    result = searcher.run(
        _sets([0], [4]), zero_activation(chain), k=1
    )
    # BFS instances meet in the middle: v2 is the depth-2 Central Node.
    assert (2, 2) in result.central_nodes
    assert result.depth == 2
    matrix = result.state.matrix
    assert matrix[1, 0] == 1
    assert matrix[2, 0] == 2
    assert matrix[2, 1] == 2


def test_single_keyword_sources_are_central_at_depth_zero(chain5):
    result = BottomUpSearch(chain5).run(
        _sets([1, 3]), zero_activation(chain5), k=2
    )
    assert result.terminated == TERMINATED_ENOUGH_ANSWERS
    assert result.depth == 0
    assert set(result.central_nodes) == {(1, 0), (3, 0)}


def test_topkd_collects_all_central_nodes_at_final_depth(chain5):
    """top-(k,d): even asking k=1, all depth-d Central Graphs arrive."""
    result = BottomUpSearch(chain5).run(
        _sets([1, 3]), zero_activation(chain5), k=1
    )
    # Both sources are identified at level 0 — the whole depth-0 cohort.
    assert set(result.central_nodes) == {(1, 0), (3, 0)}


def test_disconnected_keywords_terminate_on_empty_frontier():
    builder = GraphBuilder()
    for i in range(4):
        builder.add_node(str(i))
    builder.add_edge(0, 1, "p")
    builder.add_edge(2, 3, "p")
    graph = builder.build()
    result = BottomUpSearch(graph).run(
        _sets([0], [3]), zero_activation(graph), k=1
    )
    assert result.terminated == TERMINATED_FRONTIER_EMPTY
    assert result.central_nodes == []


def test_level_cap_respected(chain5):
    result = BottomUpSearch(chain5, lmax=1).run(
        _sets([0], [4]), zero_activation(chain5), k=1
    )
    assert result.terminated == TERMINATED_LEVEL_CAP
    assert result.central_nodes == []
    assert result.levels_executed <= 1


def test_invalid_inputs(chain5):
    searcher = BottomUpSearch(chain5)
    with pytest.raises(ValueError):
        searcher.run(_sets([0], []), zero_activation(chain5), k=1)
    with pytest.raises(ValueError):
        searcher.run(_sets([0]), zero_activation(chain5), k=0)
    with pytest.raises(ValueError):
        BottomUpSearch(chain5, lmax=0)
    with pytest.raises(ValueError):
        BottomUpSearch(chain5, lmax=255)


def test_matches_reference_simulation_on_fig1(fig1):
    result = BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1
    )
    reference_hit, reference_centrals = reference_hitting_levels(
        fig1.graph, fig1.keyword_nodes, fig1.activation, k=1
    )
    assert state_hitting_levels(result.state) == reference_hit
    assert result.central_nodes == reference_centrals


def test_keyword_nodes_hit_regardless_of_activation():
    """Sec IV-B: keyword nodes may be *hit* before their activation level."""
    chain = chain_graph(3)
    activation = np.array([0, 9, 9], dtype=np.int32)
    result = BottomUpSearch(chain, lmax=4).run(
        _sets([0], [2]), activation, k=1
    )
    # v2 is a keyword node: B0 reaches v1? v1 is non-keyword with a=9 so
    # it blocks — B0 can never pass through. No central node emerges.
    assert result.central_nodes == []
    # But had v1 been a keyword node it would be hit: make it one.
    result2 = BottomUpSearch(chain, lmax=4).run(
        _sets([0], [2], [1]), activation, k=1
    )
    matrix = result2.state.matrix
    assert matrix[1, 0] == 1  # hit by B0 despite a=9


def test_deep_chain_stays_within_uint8_levels():
    """Hitting levels approach the one-byte ceiling without sentinel
    collisions: expansion at level l writes l+1 <= lmax <= 254 < 255."""
    chain = chain_graph(300)
    result = BottomUpSearch(chain, lmax=254).run(
        _sets([0], [299]), zero_activation(chain), k=1
    )
    assert (150, 150) in result.central_nodes
    matrix = result.state.matrix
    finite = matrix[matrix != INFINITE_LEVEL]
    assert finite.max() <= 254


def test_peak_state_bytes_reported(chain5):
    result = BottomUpSearch(chain5).run(
        _sets([0], [4]), zero_activation(chain5), k=1
    )
    assert result.peak_state_nbytes >= result.state.matrix.nbytes
