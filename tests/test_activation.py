"""Penalty-and-Reward activation mapping (Eq. 3-5) and Fig. 3 data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.activation import (
    ActivationModel,
    activation_distribution,
    activation_levels,
    distribution_table,
)


def test_weight_equal_alpha_maps_to_rounded_A():
    levels = activation_levels(np.array([0.1]), average_distance=3.68, alpha=0.1)
    assert levels[0] == 4  # Rounding(3.68)


def test_reward_and_penalty_hand_computed():
    # A = 4.0, alpha = 0.5:
    #  w=0.0  -> reward = 4*(0.5-0)/0.5 = 4  -> a = 0
    #  w=0.25 -> reward = 4*0.25/0.5 = 2     -> a = 2
    #  w=0.75 -> penalty = 4*(0.25)/0.5 = 2  -> a = 6
    #  w=1.0  -> penalty = 4*(0.5)/0.5 = 4   -> a = 8
    weights = np.array([0.0, 0.25, 0.75, 1.0])
    levels = activation_levels(weights, average_distance=4.0, alpha=0.5)
    assert list(levels) == [0, 2, 6, 8]


def test_levels_never_negative():
    levels = activation_levels(
        np.array([0.0]), average_distance=1.2, alpha=0.9
    )
    assert levels[0] >= 0


def test_alpha_bounds_enforced():
    with pytest.raises(ValueError):
        activation_levels(np.array([0.5]), 3.0, alpha=0.0)
    with pytest.raises(ValueError):
        activation_levels(np.array([0.5]), 3.0, alpha=1.0)


@settings(max_examples=40, deadline=None)
@given(
    weights=st.lists(st.floats(0, 1), min_size=1, max_size=30),
    alpha=st.floats(0.01, 0.99),
    average=st.floats(1.0, 8.0),
)
def test_monotone_in_weight(weights, alpha, average):
    """Heavier (more summarizing) nodes never activate earlier."""
    array = np.array(sorted(weights))
    levels = activation_levels(array, average, alpha)
    assert (np.diff(levels) >= 0).all()
    # Bounded by Rounding(A + A) and floored at 0.
    assert levels.max() <= round(2 * average) + 1
    assert levels.min() >= 0


def test_larger_alpha_never_raises_levels():
    """Fig. 3's knob: growing α maps more nodes to small levels."""
    rng = np.random.default_rng(0)
    weights = rng.random(200)
    small = activation_levels(weights, 3.68, alpha=0.05)
    large = activation_levels(weights, 3.68, alpha=0.4)
    assert (large <= small).all()
    assert large.sum() < small.sum()


def test_activation_model_caches_fields():
    weights = np.array([0.0, 0.5, 1.0])
    model = ActivationModel.from_weights(weights, 3.0, 0.1)
    assert model.alpha == 0.1
    assert model.max_level == int(model.levels.max())


def test_distribution_sums_to_one():
    levels = np.array([0, 0, 1, 2, 3, 4, 7, 9])
    table = activation_distribution(levels, tail_start=4)
    assert set(table) == {"0", "1", "2", "3", ">=4"}
    assert abs(sum(table.values()) - 1.0) < 1e-12
    assert table["0"] == 0.25
    assert table[">=4"] == 3 / 8


def test_distribution_empty():
    assert activation_distribution(np.array([], dtype=int)) == {}


def test_distribution_table_fig3_shape(tiny_graph):
    """Fig. 3: larger α shifts node mass toward small activation levels."""
    from repro.core.weights import node_weights

    weights = node_weights(tiny_graph)
    table = distribution_table(weights, average_distance=3.68)
    assert set(table) == {0.05, 0.1, 0.4}
    low_alpha_small = table[0.05]["0"] + table[0.05]["1"]
    high_alpha_small = table[0.4]["0"] + table[0.4]["1"]
    assert high_alpha_small >= low_alpha_small
