"""Tests for the schedule-exploration checker (``repro.analysis.schedules``).

The explorer's claim: for the real fused kernel, the final search state
is bitwise independent of the order racing chunks execute in (Theorem
V.2), and an order-*dependent* protocol bug — invisible to per-level
invariants — is caught by cross-schedule comparison.
"""

import numpy as np
import pytest

from repro.analysis.schedules import (
    AlternatingSchedule,
    ExplicitSchedule,
    IdentitySchedule,
    InterleavedSchedule,
    ReversedSchedule,
    SeededSchedule,
    VirtualScheduleBackend,
    explore_schedules,
    order_dependent_runner,
    run_schedule_check,
)
from repro.core.bottom_up import BottomUpSearch
from repro.graph.generators import WikiKBConfig, wiki_like_kb
from repro.parallel import SequentialBackend, ThreadPoolBackend


def _case(seed=5):
    config = WikiKBConfig(
        name=f"schedtest-{seed}",
        seed=seed,
        n_papers=40,
        n_people=20,
        n_misc=20,
        n_venues=4,
        n_orgs=4,
    )
    graph, _ = wiki_like_kb(config)
    rng = np.random.default_rng(seed * 17 + 3)
    n = graph.n_nodes
    q = 3
    sets = [
        np.unique(rng.integers(0, n, size=int(rng.integers(1, 5))))
        for _ in range(q)
    ]
    activation = np.zeros(n, dtype=np.int32)
    return graph, sets, activation, 4


def _run(backend, case):
    graph, sets, activation, k = case
    with backend:
        return BottomUpSearch(graph, backend=backend).run(sets, activation, k)


# ---------------------------------------------------------------------------
# Schedule primitives
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "schedule",
    [
        IdentitySchedule(),
        ReversedSchedule(),
        InterleavedSchedule(),
        AlternatingSchedule(),
        SeededSchedule(3),
    ],
)
@pytest.mark.parametrize("n_chunks", [1, 2, 3, 5, 8])
def test_schedules_emit_permutations(schedule, n_chunks):
    for level in range(3):
        order = list(schedule.order(level, n_chunks))
        assert sorted(order) == list(range(n_chunks)), (
            schedule.name,
            level,
        )


def test_seeded_schedule_is_deterministic():
    a = SeededSchedule(9)
    b = SeededSchedule(9)
    assert [list(a.order(lv, 6)) for lv in range(4)] == [
        list(b.order(lv, 6)) for lv in range(4)
    ]
    c = SeededSchedule(10)
    assert any(
        list(a.order(lv, 6)) != list(c.order(lv, 6)) for lv in range(4)
    )


def test_explicit_schedule_replays_table_and_falls_back():
    schedule = ExplicitSchedule([[1, 0], [0, 1]])
    assert list(schedule.order(0, 2)) == [1, 0]
    assert list(schedule.order(1, 2)) == [0, 1]
    # Beyond the table, or on a chunk-count drift: identity.
    assert list(schedule.order(2, 3)) == [0, 1, 2]
    assert list(schedule.order(0, 3)) == [0, 1, 2]


def test_virtual_backend_rejects_non_permutation():
    class Broken(IdentitySchedule):
        def order(self, level, n_chunks):
            return [0] * n_chunks

    backend = VirtualScheduleBackend(Broken(), n_threads=2)
    with pytest.raises(ValueError, match="not a permutation"):
        _run(backend, _case())


# ---------------------------------------------------------------------------
# Clean kernel: every schedule is bitwise identical
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "schedule",
    [ReversedSchedule(), InterleavedSchedule(), SeededSchedule(11)],
)
def test_virtual_replay_matches_sequential_and_pool(schedule):
    case = _case()
    reference = _run(SequentialBackend(), case)
    pool = _run(ThreadPoolBackend(n_threads=4), case)
    virtual = _run(
        VirtualScheduleBackend(schedule, n_threads=4, chunks_per_thread=4),
        case,
    )
    for result in (pool, virtual):
        assert np.array_equal(result.state.matrix, reference.state.matrix)
        assert sorted(result.central_nodes) == sorted(
            reference.central_nodes
        )


def test_explore_schedules_clean_on_real_kernel():
    report = explore_schedules(seed=0)
    assert report.clean, [str(f) for f in report.findings]
    assert report.schedules_run >= 4
    assert report.levels_replayed > 0


def test_explore_schedules_exhaustive_on_tiny_space():
    report = explore_schedules(
        seed=0, n_threads=2, chunks_per_thread=1, budget=48
    )
    assert report.exhaustive
    assert report.space_size is not None and report.space_size <= 48
    # Exhaustive = every per-level permutation combination ran.
    assert report.schedules_run == report.space_size
    assert report.clean, [str(f) for f in report.findings]


def test_run_schedule_check_clean_and_deterministic():
    first = run_schedule_check(seeds=(0,))
    second = run_schedule_check(seeds=(0,))
    assert first.clean and second.clean
    assert first.schedules_run == second.schedules_run
    assert first.levels_replayed == second.levels_replayed
    assert first.exhaustive  # the coarse tier must be enumerable


# ---------------------------------------------------------------------------
# Seeded order-dependent fault: caught by divergence, not by invariants
# ---------------------------------------------------------------------------
def test_injected_order_dependence_detected():
    report = run_schedule_check(seeds=(0, 1), inject=True)
    assert not report.clean
    assert "schedule-divergence" in {f.code for f in report.findings}


def test_injected_fault_invisible_to_per_level_invariants():
    """The fault the explorer exists for: CheckedBackend alone stays
    green because a reverted never-reported write breaks no per-level
    invariant — only cross-schedule result comparison sees it."""
    from repro.analysis import CheckedBackend

    case = _case()
    backend = VirtualScheduleBackend(
        ReversedSchedule(),
        n_threads=2,
        chunks_per_thread=2,
        runner=order_dependent_runner,
    )
    checked = CheckedBackend(backend, raise_on_violation=False)
    result = _run(checked, case)
    assert not checked.violations
    reference = _run(SequentialBackend(), case)
    assert not np.array_equal(result.state.matrix, reference.state.matrix)
