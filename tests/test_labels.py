"""Vocabulary interning."""

import pytest

from repro.graph.labels import Vocabulary


def test_ids_are_dense_and_first_seen_order():
    vocab = Vocabulary()
    assert vocab.add("instance of") == 0
    assert vocab.add("subclass of") == 1
    assert vocab.add("cites") == 2
    assert len(vocab) == 3


def test_re_adding_returns_existing_id():
    vocab = Vocabulary(["a", "b"])
    assert vocab.add("a") == 0
    assert vocab.add("b") == 1
    assert len(vocab) == 2


def test_lookup_both_directions():
    vocab = Vocabulary(["author", "employer"])
    assert vocab.id_of("employer") == 1
    assert vocab[0] == "author"
    assert "author" in vocab
    assert "publisher" not in vocab


def test_id_of_unknown_raises():
    with pytest.raises(KeyError):
        Vocabulary().id_of("missing")


def test_get_with_default():
    vocab = Vocabulary(["x"])
    assert vocab.get("x") == 0
    assert vocab.get("y") is None
    assert vocab.get("y", -1) == -1


def test_iteration_follows_id_order():
    tokens = ["c", "a", "b"]
    vocab = Vocabulary(tokens)
    assert list(vocab) == tokens
    assert vocab.tokens() == tokens


def test_roundtrip_via_list():
    vocab = Vocabulary(["p1", "p2", "p3"])
    clone = Vocabulary.from_list(vocab.to_list())
    assert clone.to_list() == vocab.to_list()
    assert clone.id_of("p2") == 1


def test_from_list_rejects_duplicates():
    with pytest.raises(ValueError):
        Vocabulary.from_list(["a", "b", "a"])


def test_tokens_returns_copy():
    vocab = Vocabulary(["a"])
    vocab.tokens().append("b")
    assert len(vocab) == 1
