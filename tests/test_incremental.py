"""Incremental graph and index growth."""

import numpy as np
import pytest

from repro import KeywordSearchEngine, graph_from_triples
from repro.graph.builder import GraphBuilder
from repro.text.inverted_index import InvertedIndex


def _base_graph():
    return graph_from_triples(
        [
            ("sql", "instance of", "query language"),
            ("sparql", "instance of", "query language"),
        ]
    )


def test_from_graph_preserves_everything():
    graph = _base_graph()
    rebuilt = GraphBuilder.from_graph(graph).build()
    assert rebuilt.n_nodes == graph.n_nodes
    assert rebuilt.n_edges == graph.n_edges
    assert rebuilt.node_text == graph.node_text
    assert rebuilt.predicates.to_list() == graph.predicates.to_list()
    assert np.array_equal(rebuilt.adj.indices, graph.adj.indices)


def test_from_graph_appends_with_stable_ids():
    graph = _base_graph()
    builder = GraphBuilder.from_graph(graph)
    new_node = builder.add_node("graphql api")
    assert new_node == graph.n_nodes  # appended, never renumbered
    builder.add_edge(new_node, 1, "instance of")
    grown = builder.build()
    assert grown.n_nodes == graph.n_nodes + 1
    assert grown.n_edges == graph.n_edges + 1
    # Old node text unchanged at the same ids.
    for node in range(graph.n_nodes):
        assert grown.node_text[node] == graph.node_text[node]


def test_index_extend_matches_full_rebuild():
    graph = _base_graph()
    index = InvertedIndex.from_graph(graph)
    new_texts = ["graphql api", "another sql dialect"]
    first_id = index.extend(new_texts)
    assert first_id == graph.n_nodes

    rebuilt = InvertedIndex()
    rebuilt.build(list(graph.node_text) + new_texts)
    assert index.n_nodes == rebuilt.n_nodes
    assert set(index.terms) == set(rebuilt.terms)
    for term in rebuilt.terms:
        assert np.array_equal(
            index.nodes_for_normalized_term(term),
            rebuilt.nodes_for_normalized_term(term),
        )


def test_extend_keeps_postings_sorted():
    index = InvertedIndex()
    index.build(["alpha", "beta"])
    index.extend(["alpha again", "alpha thrice"])
    postings = index.nodes_for_normalized_term("alpha")
    assert list(postings) == sorted(postings)
    assert list(postings) == [0, 2, 3]


def test_incremental_update_end_to_end():
    """Grow the KB, extend the index, and search for the new entity."""
    graph = _base_graph()
    index = InvertedIndex.from_graph(graph)

    builder = GraphBuilder.from_graph(graph)
    cypher = builder.add_node("cypher graph query syntax")
    builder.add_edge(cypher, 1, "instance of")  # -> query language
    grown = builder.build()
    index.extend(["cypher graph query syntax"])

    engine = KeywordSearchEngine(grown, index=index, average_distance=2.0)
    result = engine.search("cypher sql", k=3)
    assert result.answers
    top_nodes = set().union(*(a.graph.nodes for a in result.answers))
    assert cypher in top_nodes


def test_extend_empty_is_noop():
    index = InvertedIndex()
    index.build(["alpha"])
    before_terms = index.n_terms
    index.extend([])
    assert index.n_terms == before_terms
    assert index.n_nodes == 1
