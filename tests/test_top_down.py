"""Top-down processing: extraction, level-cover, dedup, ranking."""

import numpy as np
import pytest

from repro.core.bottom_up import BottomUpSearch
from repro.core.central_graph import CentralGraph
from repro.core.state import SearchState
from repro.core.top_down import (
    HittingDAG,
    TopDownConfig,
    deduplicate_by_containment,
    extract_central_graph,
    level_cover_prune,
    process_top_down,
)
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, random_graph

from conftest import zero_activation


def _sets(*groups):
    return [np.array(g, dtype=np.int64) for g in groups]


def _search(graph, sets, activation=None, k=1, lmax=24):
    if activation is None:
        activation = zero_activation(graph)
    return BottomUpSearch(graph, lmax=lmax).run(_sets(*sets), activation, k)


def test_extract_chain_single_paths(chain5):
    result = _search(chain5, ([0], [4]))
    answer = extract_central_graph(chain5, result.state, 2, 2)
    assert answer.central_node == 2
    assert answer.nodes == {0, 1, 2, 3, 4}
    assert answer.edges == {(0, 1), (1, 2), (4, 3), (3, 2)}
    assert answer.all_nodes_reach_central()
    assert answer.covers_all(2)


def test_extract_multipath_diamond(diamond):
    """Both parallel shortest paths belong to the Central Graph."""
    result = _search(diamond, ([0], [3]), k=2)
    centrals = dict(result.central_nodes)
    assert centrals.get(1) == 1 or centrals.get(3) == 2
    # Search again targeting the two-hop central at node 3's side:
    # extract at whichever central covers both keywords via both bridges.
    state = result.state
    # Node 1 and node 2 are both hit by both BFS instances at level 1.
    answer = extract_central_graph(diamond, state, 1, 1)
    assert answer.nodes >= {0, 1, 3}
    # The sibling bridge 2 is NOT part of paths to central node 1.
    assert 2 not in answer.nodes


def test_extract_respects_multi_predecessors():
    # Two sources both adjacent to the central: both hitting paths kept.
    builder = GraphBuilder()
    for i in range(4):
        builder.add_node(str(i))
    builder.add_edge(0, 2, "p")
    builder.add_edge(1, 2, "p")
    builder.add_edge(3, 2, "p")
    graph = builder.build()
    result = _search(graph, ([0, 1], [3]))
    answer = extract_central_graph(graph, result.state, 2, 1)
    assert answer.edges == {(0, 2), (1, 2), (3, 2)}
    assert answer.keyword_contributions == {
        0: frozenset({0}),
        1: frozenset({0}),
        3: frozenset({1}),
    }


def test_extract_with_activation_delays(fig1):
    """The Fig. 1 answer: cycle via v0 is excluded, four XML paths kept."""
    result = BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1
    )
    answer = extract_central_graph(fig1.graph, result.state, 2, 4)
    assert answer.central_node == 2
    assert answer.nodes == {1, 2, 3, 4, 5, 6, 7, 8, 9}
    # Four hitting paths from v9 (through 3, 6, 7, 8).
    for via in (3, 6, 7, 8):
        assert (9, via) in answer.edges
        assert (via, 2) in answer.edges
    # Both RDF nodes hit v2 directly.
    assert (4, 2) in answer.edges and (5, 2) in answer.edges
    assert (1, 2) in answer.edges
    assert answer.all_nodes_reach_central()


def test_hitting_dag_matches_edge_by_edge(fig1):
    result = BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1
    )
    dag = HittingDAG(fig1.graph, result.state)
    # v2's XML predecessors at level 4 are exactly the four bridges.
    assert set(map(int, dag.predecessors(2, 0))) == {3, 6, 7, 8}
    assert set(map(int, dag.predecessors(2, 1))) == {4, 5}
    assert set(map(int, dag.predecessors(2, 2))) == {1}


def _manual_graph(contributions, edges, central=0, depth=2):
    nodes = set()
    for u, v in edges:
        nodes.add(u)
        nodes.add(v)
    nodes.add(central)
    return CentralGraph(
        central_node=central,
        depth=depth,
        nodes=nodes,
        edges=set(edges),
        keyword_contributions={
            node: frozenset(cols) for node, cols in contributions.items()
        },
    )


def test_level_cover_prunes_lower_levels():
    """Fig. 5: the two-keyword node makes single-keyword carriers redundant.

    central 0; node 1 contributes {0, 1}; nodes 2 and 3 contribute {0}.
    """
    graph = _manual_graph(
        contributions={1: (0, 1), 2: (0,), 3: (0,)},
        edges=[(1, 0), (2, 0), (3, 0)],
    )
    pruned = level_cover_prune(graph, n_keywords=2)
    assert pruned.nodes == {0, 1}
    assert pruned.edges == {(1, 0)}
    assert pruned.pruned


def test_level_cover_keeps_whole_level():
    """Nodes within one level never prune each other."""
    graph = _manual_graph(
        contributions={1: (0,), 2: (0,), 3: (1,)},
        edges=[(1, 0), (2, 0), (3, 0)],
    )
    pruned = level_cover_prune(graph, n_keywords=2)
    # All three are level-1 contributors; coverage completes only with
    # the whole level, so nothing is pruned.
    assert pruned.nodes == {0, 1, 2, 3}


def test_level_cover_preserves_shared_path_nodes():
    """A path node serving a preserved keyword node survives pruning."""
    # 1 --(0,1)--> 4 -> 0  and 2 --(0)--> 4 -> 0: node 4 shared.
    graph = _manual_graph(
        contributions={1: (0, 1), 2: (0,)},
        edges=[(1, 4), (2, 4), (4, 0)],
    )
    pruned = level_cover_prune(graph, n_keywords=2)
    assert pruned.nodes == {0, 1, 4}
    assert (2, 4) not in pruned.edges


def test_level_cover_central_covers_everything():
    graph = _manual_graph(
        contributions={0: (0, 1), 1: (0,)},
        edges=[(1, 0)],
    )
    pruned = level_cover_prune(graph, n_keywords=2)
    assert pruned.nodes == {0}


def test_level_cover_keeps_coverage_invariant(fig1):
    result = BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1
    )
    answer = extract_central_graph(fig1.graph, result.state, 2, 4)
    pruned = level_cover_prune(answer, 3)
    assert pruned.covers_all(3)
    assert pruned.nodes <= answer.nodes
    assert pruned.all_nodes_reach_central()


def test_deduplicate_removes_strict_supersets():
    small = _manual_graph({1: (0,)}, [(1, 0)], central=0)
    big = _manual_graph({1: (0,)}, [(1, 0), (2, 0)], central=0)
    kept = deduplicate_by_containment([big, small])
    assert kept == [small]


def test_deduplicate_keeps_equal_sets():
    a = _manual_graph({1: (0,)}, [(1, 0)], central=0)
    b = _manual_graph({0: (0,)}, [(1, 0)], central=0)
    kept = deduplicate_by_containment([a, b])
    assert len(kept) == 2


def test_deduplicate_keeps_overlapping_non_nested():
    a = _manual_graph({1: (0,)}, [(1, 0), (2, 0)], central=0)
    b = _manual_graph({1: (0,)}, [(1, 0), (3, 0)], central=0)
    assert len(deduplicate_by_containment([a, b])) == 2


def test_process_top_down_ranks_by_score(chain5):
    result = _search(chain5, ([0, 2], [2, 4]), k=3)
    weights = np.linspace(0.1, 0.5, 5)
    ranked = process_top_down(
        chain5, result.state, weights, TopDownConfig(k=3)
    )
    assert ranked
    scores = [answer.score for answer in ranked]
    assert scores == sorted(scores)
    for answer in ranked:
        assert answer.pruned


def test_process_top_down_thread_parallelism_matches_serial(random20):
    result = _search(
        random20, ([0, 1], [5], [10, 11]), k=5
    )
    weights = np.linspace(0, 1, random20.n_nodes)
    serial = process_top_down(
        random20, result.state, weights, TopDownConfig(k=5, n_threads=1)
    )
    threaded = process_top_down(
        random20, result.state, weights, TopDownConfig(k=5, n_threads=3)
    )
    assert [a.central_node for a in serial] == [
        a.central_node for a in threaded
    ]
    assert [a.score for a in serial] == [a.score for a in threaded]


def test_process_top_down_prebuilt_skips_extraction(chain5):
    result = _search(chain5, ([0], [4]))
    weights = np.ones(5)
    prebuilt = [_manual_graph({0: (0,), 4: (1,)}, [(0, 2), (4, 2)], central=2)]
    ranked = process_top_down(
        chain5,
        result.state,
        weights,
        TopDownConfig(k=1),
        prebuilt=prebuilt,
    )
    assert len(ranked) == 1
    assert ranked[0].central_node == 2


def test_extraction_edges_satisfy_theorem_v4(fig1):
    """Every recovered edge obeys the hitting-level recurrence."""
    result = BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1
    )
    state = result.state
    answer = extract_central_graph(fig1.graph, state, 2, 4)
    activation = fig1.activation
    for pred, target in answer.edges:
        consistent_for_some_keyword = False
        for column in range(3):
            pred_level = int(state.matrix[pred, column])
            target_level = int(state.matrix[target, column])
            if pred_level == 255 or target_level == 255:
                continue
            floor = 0 if state.keyword_node[target] else activation[target] - 1
            expected = 1 + max(activation[pred], pred_level, floor)
            if target_level == expected:
                consistent_for_some_keyword = True
        assert consistent_for_some_keyword, (pred, target)
