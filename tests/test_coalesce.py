"""Cross-query coalesced expansion: widened lane matrix, exact parity.

The coalesced driver (:mod:`repro.core.coalesce`) packs several queries'
keyword columns side by side and advances every query with one kernel
pass per BFS level. The contract is *exact* per-query equivalence: each
query's matrix, central-node set and identification levels must equal a
solo :class:`~repro.core.bottom_up.BottomUpSearch` run, lanes frozen at
solo-final values once the query terminates. These tests fuzz that
contract for the native ``fused_expand_lanes`` tier and the per-lane
NumPy driver, and pin the serving surface
(``BatchSearcher(coalesce=True)``, ``search_coalesced`` lane grouping).
"""

import numpy as np
import pytest

from repro.core.batch import BatchSearcher
from repro.core.bottom_up import BottomUpSearch
from repro.core.coalesce import CoalescedBottomUp
from repro.core.engine import KeywordSearchEngine
from repro.graph.generators import WikiKBConfig, wiki_like_kb
from repro.parallel import VectorizedBackend

from conftest import zero_activation


def _fuzz_kb(seed: int):
    config = WikiKBConfig(
        name=f"coalesce-{seed}",
        seed=seed,
        n_papers=60,
        n_people=30,
        n_misc=30,
        n_venues=8,
        n_orgs=8,
    )
    graph, _ = wiki_like_kb(config)
    return graph


def _fuzz_batch(graph, seed: int, n_queries: int = 3):
    """Random per-query keyword source sets of varying width."""
    rng = np.random.default_rng(seed)
    n = graph.n_nodes
    batch = []
    for _ in range(n_queries):
        q = int(rng.integers(1, 6))
        batch.append(
            [
                np.unique(rng.integers(0, n, size=int(rng.integers(1, 4))))
                for _ in range(q)
            ]
        )
    if seed % 2:
        activation = rng.integers(0, 4, size=n).astype(np.int32)
    else:
        activation = zero_activation(graph)
    k = int(rng.integers(1, 8))
    return batch, activation, k


def _solo_signature(result):
    return (
        result.state.matrix.tobytes(),
        result.central_nodes,
        result.state.central_level.tobytes(),
        result.terminated,
    )


def _coalesced_signature(outcome):
    return (
        outcome.state.matrix.tobytes(),
        outcome.state.central_nodes,
        outcome.state.central_level.tobytes(),
        outcome.terminated,
    )


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("native", [None, False])
def test_coalesced_matches_solo(seed, native):
    """Every query's share of the coalesced run equals its solo run."""
    graph = _fuzz_kb(seed)
    batch, activation, k = _fuzz_batch(graph, seed * 11 + 2)

    outcomes = CoalescedBottomUp(graph, native=native).run(
        batch, activation, k
    )
    assert len(outcomes) == len(batch)
    solo = BottomUpSearch(graph, backend=VectorizedBackend())
    for sets, outcome in zip(batch, outcomes):
        reference = solo.run(sets, activation, k)
        assert _coalesced_signature(outcome) == _solo_signature(reference)
        # finite_count is recomputed from the final matrix; it must agree
        # with the solo incremental counts.
        assert np.array_equal(
            outcome.state.finite_count, reference.state.finite_count
        )


def test_coalesced_native_matches_numpy_driver():
    """The compiled lane kernel and the per-lane driver agree exactly."""
    graph = _fuzz_kb(3)
    batch, activation, k = _fuzz_batch(graph, 91, n_queries=4)
    native = CoalescedBottomUp(graph).run(batch, activation, k)
    fallback = CoalescedBottomUp(graph, native=False).run(
        batch, activation, k
    )
    for a, b in zip(native, fallback):
        assert _coalesced_signature(a) == _coalesced_signature(b)


def test_coalesced_validates_inputs():
    graph = _fuzz_kb(5)
    activation = zero_activation(graph)
    driver = CoalescedBottomUp(graph)
    with pytest.raises(ValueError, match="k must be"):
        driver.run([[np.array([0])]], activation, 0)
    with pytest.raises(ValueError, match="no keywords"):
        driver.run([[]], activation, 1)
    with pytest.raises(ValueError, match="empty"):
        driver.run([[np.array([0]), np.array([], dtype=np.int64)]],
                   activation, 1)
    with pytest.raises(ValueError, match="one entry per node"):
        driver.run([[np.array([0])]], activation[:-1], 1)
    with pytest.raises(ValueError, match="lmax"):
        CoalescedBottomUp(graph, lmax=0)


@pytest.fixture(scope="module")
def engine(request):
    graph, _ = request.getfixturevalue("tiny_kb")
    return KeywordSearchEngine(graph, backend=VectorizedBackend())


def _answer_signature(result):
    return tuple(
        (answer.graph.central_node, round(answer.score, 9))
        for answer in result.answers
    )


def test_batch_coalesce_matches_serial(engine):
    queries = [
        "machine learning",
        "knowledge graph",
        "neural network",
        "machine learning",  # duplicate: coalesced once, shared result
    ]
    serial = BatchSearcher(engine).run(queries, k=5)
    coalesced = BatchSearcher(engine, coalesce=True).run(queries, k=5)
    assert coalesced.unique_queries == 3
    assert len(coalesced.results) == len(queries)
    for a, b in zip(serial.results, coalesced.results):
        assert (a is None) == (b is None)
        if a is not None:
            assert _answer_signature(a) == _answer_signature(b)
    assert coalesced.results[0] is coalesced.results[3]


def test_batch_coalesce_records_failures(engine):
    queries = ["machine learning", "zzzzunmatchable"]
    report = BatchSearcher(engine, coalesce=True).run(queries, k=3)
    assert report.results[0] is not None
    assert report.results[1] is None
    assert "zzzzunmatchable" in report.failures


def test_batch_coalesce_rejects_thread_workers(engine):
    with pytest.raises(ValueError, match="coalesce"):
        BatchSearcher(engine, n_workers=2, coalesce=True)


def test_search_coalesced_small_lane_budget_groups(engine):
    """A tiny max_lanes forces several groups; answers stay identical."""
    queries = ["machine learning", "knowledge graph", "neural network"]
    wide, failures_wide = engine.search_coalesced(queries, k=5)
    narrow, failures_narrow = engine.search_coalesced(
        queries, k=5, max_lanes=2
    )
    assert failures_wide == failures_narrow == {}
    for a, b in zip(wide, narrow):
        assert _answer_signature(a) == _answer_signature(b)
    with pytest.raises(ValueError, match="max_lanes"):
        engine.search_coalesced(queries, k=5, max_lanes=0)
