"""Benchmark harness: instrumentation, datasets, sweeps, reporting."""

import time

import numpy as np
import pytest

from repro.bench.datasets import BenchDataset, build_dataset
from repro.bench.harness import (
    METHOD_BANKS2,
    METHOD_CPU_PAR,
    METHOD_CPU_PAR_D,
    METHOD_GPU_SIM,
    SweepRow,
    effectiveness_experiment,
    make_engine,
    run_method,
    storage_table,
    vary_alpha,
    vary_knum,
    vary_topk,
)
from repro.bench.reporting import (
    distribution_table_text,
    format_table,
    precision_table,
    sweep_table,
    total_time_table,
)
from repro.eval.precision import PrecisionRow
from repro.eval.queries import CannedQuery
from repro.graph.generators import WikiKBConfig
from repro.instrumentation import (
    PHASE_TOTAL,
    PhaseTimer,
    StorageReport,
    average_timers,
)


@pytest.fixture(scope="module")
def bench_dataset():
    config = WikiKBConfig(
        name="bench-tiny",
        seed=11,
        n_papers=180,
        n_people=70,
        n_misc=70,
        n_venues=6,
        n_orgs=6,
        gold_papers_per_query=2,
        decoy_papers_per_phrase=1,
    )
    return build_dataset(config, distance_pairs=300)


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------
def test_phase_timer_accumulates():
    timer = PhaseTimer()
    with timer.phase("a"):
        time.sleep(0.001)
    with timer.phase("a"):
        pass
    assert timer.get("a") > 0
    timer.add("b", 0.5)
    assert timer.milliseconds()["b"] == 500.0


def test_phase_timer_records_on_exception():
    timer = PhaseTimer()
    with pytest.raises(RuntimeError):
        with timer.phase("x"):
            raise RuntimeError("boom")
    assert timer.get("x") >= 0


def test_timer_merge_and_average():
    a = PhaseTimer({"x": 1.0})
    b = PhaseTimer({"x": 3.0, "y": 1.0})
    merged = a.merged_with(b)
    assert merged.get("x") == 4.0
    averaged = average_timers([a, b])
    assert averaged["x"] == 2000.0
    assert averaged["y"] == 500.0
    assert average_timers([]) == {}


def test_storage_report_ratio():
    report = StorageReport(pre_storage=100, max_running_storage=150)
    assert report.overhead_ratio == 1.5
    assert report.as_megabytes()["pre_storage_mb"] > 0
    assert StorageReport(0, 10).overhead_ratio == float("inf")


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------
def test_build_dataset_bundles_artifacts(bench_dataset):
    assert bench_dataset.graph.n_nodes > 200
    assert bench_dataset.index.n_terms > 50
    assert len(bench_dataset.weights) == bench_dataset.graph.n_nodes
    row = bench_dataset.table2_row()
    assert row["dataset"] == "bench-tiny"
    assert row["A"] > 0


def test_dataset_cache_returns_same_object():
    from repro.bench.datasets import _cached, clear_cache

    config = WikiKBConfig(
        name="cache-test", seed=3, n_papers=40, n_people=15, n_misc=15,
        n_venues=3, n_orgs=3, gold_papers_per_query=1,
        decoy_papers_per_phrase=1,
    )
    clear_cache()
    first = _cached(config)
    second = _cached(config)
    assert first is second
    clear_cache()


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def test_make_engine_methods(bench_dataset):
    gpu = make_engine(bench_dataset, METHOD_GPU_SIM)
    assert gpu.backend.name == "vectorized"
    cpu = make_engine(bench_dataset, METHOD_CPU_PAR, tnum=2)
    assert "threads" in cpu.backend.name
    cpu.backend.close()
    with pytest.raises(ValueError):
        make_engine(bench_dataset, METHOD_BANKS2)


def test_run_method_all_variants(bench_dataset):
    queries = ["machine learning data", "knowledge graph query"]
    for method in (
        METHOD_GPU_SIM,
        METHOD_CPU_PAR,
        METHOD_CPU_PAR_D,
        METHOD_BANKS2,
    ):
        phase_ms = run_method(bench_dataset, method, queries, topk=5, tnum=2)
        assert phase_ms[PHASE_TOTAL] > 0
    with pytest.raises(ValueError):
        run_method(bench_dataset, "nope", queries)


def test_vary_knum_produces_rows(bench_dataset):
    rows = vary_knum(
        bench_dataset,
        knums=(2, 3),
        methods=(METHOD_GPU_SIM,),
        n_queries=2,
    )
    assert len(rows) == 2
    assert all(isinstance(row, SweepRow) for row in rows)
    assert all(row.total_ms > 0 for row in rows)


def test_vary_topk_and_alpha(bench_dataset):
    rows_k = vary_topk(
        bench_dataset, topks=(5, 10), methods=(METHOD_GPU_SIM,), n_queries=2
    )
    assert {row.value for row in rows_k} == {5, 10}
    rows_a = vary_alpha(
        bench_dataset, alphas=(0.1, 0.4), methods=(METHOD_GPU_SIM,),
        n_queries=2,
    )
    assert {row.value for row in rows_a} == {0.1, 0.4}


def test_storage_table(bench_dataset):
    report = storage_table(bench_dataset, knum=4)
    assert report.max_running_storage > report.pre_storage


def test_effectiveness_experiment_rows(bench_dataset):
    queries = [CannedQuery("Q5", ("SQL", "RDF", "knowledge base"))]
    rows = effectiveness_experiment(
        bench_dataset, alphas=(0.1,), cutoffs=(5,), queries=queries, topk=5
    )
    methods = {row.method for row in rows}
    assert methods == {"BANKS-II", "alpha-0.1"}
    for row in rows:
        assert 0.0 <= row.precision_at[5] <= 1.0


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "b"], [[1, 2.5], ["xx", 3.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")


def test_sweep_and_total_tables():
    rows = [
        SweepRow("d", "m1", "knum", 2, {PHASE_TOTAL: 1.0}),
        SweepRow("d", "m2", "knum", 2, {PHASE_TOTAL: 2.0}),
    ]
    assert "m1" in total_time_table(rows)
    assert "total_ms" in sweep_table(rows)


def test_precision_table_renders_grid():
    rows = [
        PrecisionRow("Q1", "BANKS-II", {5: 0.8}),
        PrecisionRow("Q1", "alpha-0.1", {5: 1.0}),
        PrecisionRow("Q2", "BANKS-II", {5: 0.6}),
    ]
    text = precision_table(rows, cutoff=5)
    assert "Q1" in text and "Q2" in text
    assert "BANKS-II" in text


def test_distribution_table_text():
    table = {0.1: {"0": 0.5, ">=4": 0.5}, 0.4: {"0": 0.9, ">=4": 0.1}}
    text = distribution_table_text(table)
    assert "alpha-0.1" in text and "alpha-0.4" in text
