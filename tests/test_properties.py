"""Cross-cutting property-based tests on random search instances.

Complements the per-module suites with invariants that hold across the
whole pipeline on arbitrary inputs: pruning monotonicity, score
consistency, BANKS-I optimality, and containment-dedup correctness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.banks import BanksConfig, BanksI
from repro.core.activation import activation_levels
from repro.core.bottom_up import BottomUpSearch
from repro.core.scoring import central_graph_score
from repro.core.top_down import (
    HittingDAG,
    deduplicate_by_containment,
    extract_central_graph,
    level_cover_prune,
)
from repro.core.weights import node_weights
from repro.graph.algorithms import bfs_levels
from repro.graph.generators import random_graph
from repro.parallel import VectorizedBackend
from repro.text.inverted_index import InvertedIndex


def _search_instance(seed, alpha=None):
    graph = random_graph(
        28, 80, seed=seed,
        vocabulary=("alpha", "beta", "gamma", "delta"), words_per_node=2,
    )
    index = InvertedIndex.from_graph(graph)
    sets = [
        index.nodes_for_normalized_term(term)
        for term in ("alpha", "beta", "gamma")
    ]
    sets = [s for s in sets if len(s)]
    if len(sets) < 2:
        return None
    if alpha is None:
        activation = np.zeros(graph.n_nodes, dtype=np.int32)
    else:
        activation = activation_levels(node_weights(graph), 3.0, alpha)
    result = BottomUpSearch(graph, VectorizedBackend()).run(sets, activation, 5)
    return graph, sets, result


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 4000), alpha=st.sampled_from([None, 0.1, 0.4]))
def test_level_cover_invariants(seed, alpha):
    instance = _search_instance(seed, alpha)
    if instance is None:
        return
    graph, sets, result = instance
    q = result.state.n_keywords
    dag = HittingDAG(graph, result.state)
    for node, depth in result.state.central_nodes:
        original = extract_central_graph(graph, result.state, node, depth, dag)
        pruned = level_cover_prune(original, q)
        # Pruning never loses coverage, connectivity, or the central node.
        assert pruned.covers_all(q)
        assert pruned.all_nodes_reach_central()
        assert pruned.central_node == original.central_node
        # Pruning is monotone: subset of nodes and edges, same depth.
        assert pruned.nodes <= original.nodes
        assert pruned.edges <= original.edges
        assert pruned.depth == original.depth
        # Score monotonicity under non-negative weights.
        weights = np.abs(np.random.default_rng(seed).random(graph.n_nodes))
        assert central_graph_score(pruned, weights) <= central_graph_score(
            original, weights
        ) + 1e-12


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 4000))
def test_extraction_sources_have_level_zero(seed):
    """Leaves of every hitting path are keyword sources (hit level 0)."""
    instance = _search_instance(seed)
    if instance is None:
        return
    graph, sets, result = instance
    matrix = result.state.matrix
    dag = HittingDAG(graph, result.state)
    for node, depth in result.state.central_nodes[:5]:
        answer = extract_central_graph(graph, result.state, node, depth, dag)
        predecessors = answer.predecessors()
        for member in answer.nodes:
            if member == answer.central_node:
                continue
            if not predecessors[member]:
                # A path leaf: must be a source of some keyword.
                assert any(matrix[member, c] == 0 for c in range(matrix.shape[1]))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 3000), k=st.integers(1, 8))
def test_banks1_path_sums_are_optimal(seed, k):
    """BANKS-I is Dijkstra-exact: every tree's path sum equals the true
    shortest-distance sum for its root."""
    graph = random_graph(
        22, 60, seed=seed, vocabulary=("alpha", "beta"), words_per_node=1
    )
    index = InvertedIndex.from_graph(graph)
    banks = BanksI(graph, index, BanksConfig(prestige_bonus=0.0))
    try:
        result = banks.search("alpha beta", k=k)
    except ValueError:
        return
    sets = [
        index.nodes_for_normalized_term(term) for term in ("alpha", "beta")
    ]
    levels = [bfs_levels(graph, list(map(int, s))) for s in sets if len(s)]
    for tree in result.answers:
        expected = sum(int(level[tree.root]) for level in levels)
        path_sum = sum(len(p) - 1 for p in tree.paths.values())
        assert path_sum == expected
        assert tree.score == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_containment_dedup_properties(data):
    """Output has no strict-superset pair and keeps every minimal set."""
    from repro.core.central_graph import CentralGraph

    n_graphs = data.draw(st.integers(1, 12))
    graphs = []
    for i in range(n_graphs):
        members = data.draw(
            st.sets(st.integers(0, 8), min_size=1, max_size=6)
        )
        central = min(members)
        graphs.append(
            CentralGraph(central, 1, set(members), set(), {})
        )
    kept = deduplicate_by_containment(graphs)
    kept_sets = [g.nodes for g in kept]
    for i, a in enumerate(kept_sets):
        for j, b in enumerate(kept_sets):
            if i != j:
                assert not (a > b)
    # Every input that is minimal (contains no other input) survives.
    all_sets = [g.nodes for g in graphs]
    for g in graphs:
        if not any(g.nodes > other for other in all_sets):
            assert any(
                g.nodes == kept_graph.nodes and g.central_node == kept_graph.central_node
                for kept_graph in kept
            ) or any(g.nodes == s for s in kept_sets)
