"""Cross-backend parity and schema tests for the fused expansion kernel.

The fused single-pass kernel (``repro.parallel.vectorized``) replaces q
sequential per-column passes with one pass over the (E × q) work grid,
optionally through a runtime-compiled C tier. Theorem V.2 says every
scheduling of the idempotent writes converges to the same M — so every
backend, and both kernel tiers, must be *bitwise* identical on M, the
Central Node set and the search depth. This module fuzzes that claim on
a population of hub-heavy wiki-shaped KBs and smoke-tests the
``BENCH_kernel.json`` microbenchmark plumbing at tiny scale.
"""

import json

import numpy as np
import pytest

from repro.bench.kernel_microbench import (
    LegacyPerColumnBackend,
    run_kernel_microbench,
    tiny_config,
    validate_payload,
    write_payload,
)
from repro.core.activation import activation_levels
from repro.core.bottom_up import BottomUpSearch
from repro.core.weights import node_weights
from repro.graph.generators import WikiKBConfig, wiki_like_kb
from repro.parallel import SequentialBackend, ThreadPoolBackend, VectorizedBackend

N_FUZZ_GRAPHS = 20


def _fuzz_kb(seed: int):
    """A small hub-heavy wiki-shaped KB; venues/orgs are the hubs."""
    config = WikiKBConfig(
        name=f"fuzz-{seed}",
        seed=seed,
        n_papers=60,
        n_people=30,
        n_misc=30,
        n_venues=8,
        n_orgs=8,
    )
    graph, _ = wiki_like_kb(config)
    return graph


def _fuzz_problem(graph, seed: int, q: int):
    """Keyword node sets, activation and k for one fuzz case."""
    rng = np.random.default_rng(seed)
    n = graph.n_nodes
    sets = [
        np.unique(rng.integers(0, n, size=int(rng.integers(1, 6))))
        for _ in range(q)
    ]
    if seed % 2:
        # Real Penalty-and-Reward levels: hubs activate late, which
        # exercises the blocked/retry protocol (Algorithm 2 lines 18-20).
        alpha = (0.05, 0.1, 0.4)[seed % 3]
        activation = activation_levels(node_weights(graph), 3.0, alpha)
    else:
        activation = np.zeros(n, dtype=np.int32)
    k = int(rng.integers(1, 12))
    return sets, activation, k


def _run_backend(backend, graph, sets, activation, k):
    with backend:
        return BottomUpSearch(graph, backend=backend).run(sets, activation, k)


@pytest.mark.parametrize("seed", range(N_FUZZ_GRAPHS))
def test_backends_bitwise_identical_on_wiki_graphs(seed):
    """Sequential / ThreadPool / fused Vectorized (both tiers) agree.

    q cycles through 2..8 so every SWAR lane count of the packed
    word path is hit across the population.
    """
    graph = _fuzz_kb(seed)
    q = 2 + seed % 7
    sets, activation, k = _fuzz_problem(graph, seed * 31 + 7, q)

    reference = _run_backend(
        SequentialBackend(), graph, sets, activation, k
    )
    contenders = {
        "threads": ThreadPoolBackend(n_threads=3),
        "vectorized": VectorizedBackend(),
        "vectorized-numpy": VectorizedBackend(native=False),
    }
    for name, backend in contenders.items():
        result = _run_backend(backend, graph, sets, activation, k)
        assert np.array_equal(
            result.state.matrix, reference.state.matrix
        ), f"{name}: M diverged on seed {seed} (q={q})"
        assert sorted(result.central_nodes) == sorted(
            reference.central_nodes
        ), f"{name}: central nodes diverged on seed {seed}"
        assert result.depth == reference.depth, name


def test_backends_agree_on_wide_query():
    """q > 8 falls off the packed-word path; the unpacked path must match."""
    graph = _fuzz_kb(99)
    sets, activation, k = _fuzz_problem(graph, 99, q=11)
    reference = _run_backend(SequentialBackend(), graph, sets, activation, k)
    fused = _run_backend(VectorizedBackend(), graph, sets, activation, k)
    assert np.array_equal(fused.state.matrix, reference.state.matrix)
    assert sorted(fused.central_nodes) == sorted(reference.central_nodes)
    assert fused.depth == reference.depth


def test_legacy_baseline_matches_sequential():
    """The measured baseline must itself be a faithful seed copy."""
    graph = _fuzz_kb(5)
    sets, activation, k = _fuzz_problem(graph, 123, q=6)
    reference = _run_backend(SequentialBackend(), graph, sets, activation, k)
    legacy = _run_backend(LegacyPerColumnBackend(), graph, sets, activation, k)
    assert np.array_equal(legacy.state.matrix, reference.state.matrix)
    assert sorted(legacy.central_nodes) == sorted(reference.central_nodes)


# ---------------------------------------------------------------------------
# Microbenchmark plumbing (tiny scale, fast)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_payload():
    from repro.bench.datasets import build_dataset

    dataset = build_dataset(tiny_config())
    return run_kernel_microbench(
        dataset=dataset,
        knum=4,
        n_queries=2,
        repeats=1,
        topk=5,
        pool_tnums=(1, 2),
    )


def test_microbench_payload_schema(tiny_payload):
    validate_payload(tiny_payload)  # raises on any schema violation
    assert tiny_payload["answers_identical"] is True
    assert tiny_payload["knum"] == 4
    assert isinstance(tiny_payload["native_kernel"], bool)
    counters = tiny_payload["fused"]["counters"]
    assert counters["edges_gathered"] > 0
    assert counters["pairs_hit"] > 0
    if tiny_payload["native_kernel"]:
        # The A/B row pinned to the NumPy tier rides along.
        assert tiny_payload["fused_numpy"]["counters"]["pairs_hit"] > 0


def test_microbench_whole_level_row(tiny_payload):
    """The whole-level side must report real work: its counters come
    from ``run_level`` outcomes, not the step-path ``last_counters``."""
    whole = tiny_payload["whole_level"]
    assert whole["counters"]["edges_gathered"] > 0
    assert whole["counters"]["pairs_hit"] > 0
    phases = whole["phases"]
    assert phases["total_ms"] >= phases["expansion_ms"]
    # Whole-level answers matched the seed baseline (folded into the
    # payload-level flag) and the batched entry matched whole-level.
    assert tiny_payload["batched"]["answers_identical"] is True
    assert tiny_payload["speedup_whole_level"] > 0


def test_microbench_warm_pool_entry(tiny_payload):
    from repro.parallel.processes import ProcessPoolBackend

    if not ProcessPoolBackend.is_supported():
        assert "warm_pool" not in tiny_payload
        pytest.skip("fork-based process pools unavailable")
    warm_pool = tiny_payload["warm_pool"]
    assert [row["n_workers"] for row in warm_pool["sweep"]] == [1, 2]
    # Warm workers must never have needed a respawn mid-sweep.
    assert all(row["respawns"] == 0 for row in warm_pool["sweep"])
    # Every row pairs warm reuse with the cold-spawn cost it amortizes.
    assert all(
        row["total_ms"] > 0 and row["cold_ms"] > 0 and row["warm_speedup"] > 0
        for row in warm_pool["sweep"]
    )
    assert warm_pool["host_cpus"] >= 1
    assert warm_pool["cold_spawn_ms"] > 0
    assert warm_pool["warm_ms"] > 0


def test_microbench_payload_roundtrip(tiny_payload, tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    write_payload(tiny_payload, str(path))
    on_disk = json.loads(path.read_text(encoding="utf-8"))
    validate_payload(on_disk)
    assert on_disk["dataset"] == tiny_payload["dataset"]


@pytest.mark.parametrize(
    "corruption, message",
    [
        ({"schema": "bogus/v0"}, "schema"),
        ({"knum": 0}, "knum"),
        ({"fused": {}}, "fused"),
        ({"speedup_expansion": -1.0}, "speedup_expansion"),
        ({"speedup_whole_level": 0}, "speedup_whole_level"),
        ({"answers_identical": "yes"}, "answers_identical"),
        ({"native_kernel": 1}, "native_kernel"),
        ({"whole_level": {}}, "whole_level"),
        ({"batched": "fast"}, "batched"),
        ({"warm_pool": {"sweep": []}}, "warm_pool"),
    ],
)
def test_validate_payload_rejects(tiny_payload, corruption, message):
    broken = dict(tiny_payload)
    broken.update(corruption)
    with pytest.raises(ValueError, match=message):
        validate_payload(broken)


def test_bench_kernel_cli_smoke(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_kernel.json"
    code = main(
        [
            "bench-kernel", "--scale", "tiny", "--knum", "3",
            "--queries", "1", "--repeats", "1", "--topk", "3",
            "--out", str(out),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "kernel microbenchmark" in captured
    validate_payload(json.loads(out.read_text(encoding="utf-8")))
