"""Inverted keyword index."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.text.inverted_index import InvertedIndex
from repro.text.tokenizer import Tokenizer, TokenizerConfig


def _graph(texts):
    builder = GraphBuilder()
    for text in texts:
        builder.add_node(text)
    if len(texts) > 1:
        builder.add_edge(0, 1, "p")
    return builder.build()


def test_basic_postings():
    graph = _graph(["SQL database", "graph database", "SQL engine"])
    index = InvertedIndex.from_graph(graph)
    assert list(index.nodes_for_term("sql")) == [0, 2]
    assert list(index.nodes_for_term("database")) == [0, 1]
    assert list(index.nodes_for_term("engine")) == [2]


def test_lookup_normalizes_terms():
    graph = _graph(["relational databases", "other"])
    index = InvertedIndex.from_graph(graph)
    # Query-side inflection meets index-side stemming.
    assert list(index.nodes_for_term("Relational")) == [0]
    assert list(index.nodes_for_term("database")) == [0]


def test_unknown_term_empty():
    graph = _graph(["alpha beta", "gamma"])
    index = InvertedIndex.from_graph(graph)
    assert len(index.nodes_for_term("unknown")) == 0


def test_stopword_only_term_empty():
    graph = _graph(["the alpha"])
    index = InvertedIndex.from_graph(graph)
    assert len(index.nodes_for_term("the")) == 0


def test_phrase_lookup_rejected():
    graph = _graph(["alpha beta"])
    index = InvertedIndex.from_graph(graph)
    with pytest.raises(ValueError, match="phrase"):
        index.nodes_for_term("alpha beta")


def test_query_node_sets_deduplicates_terms():
    graph = _graph(["alpha beta", "alpha gamma"])
    index = InvertedIndex.from_graph(graph)
    pairs = index.query_node_sets("alpha ALPHA beta")
    terms = [term for term, _ in pairs]
    assert terms == ["alpha", "beta"]
    assert list(pairs[0][1]) == [0, 1]


def test_query_node_sets_includes_empty_sets():
    graph = _graph(["alpha"])
    index = InvertedIndex.from_graph(graph)
    pairs = index.query_node_sets("alpha missing")
    assert len(pairs) == 2
    assert len(pairs[1][1]) == 0


def test_term_frequency_and_top_terms():
    graph = _graph(["alpha beta", "alpha gamma", "alpha"])
    index = InvertedIndex.from_graph(graph)
    assert index.term_frequency("alpha") == 3
    top = index.most_frequent_terms(1)
    assert top[0][0] == "alpha"
    assert top[0][1] == 3


def test_postings_sorted_and_typed():
    graph = _graph(["z alpha", "a alpha", "m alpha"])
    index = InvertedIndex.from_graph(graph)
    postings = index.nodes_for_term("alpha")
    assert postings.dtype == np.int64
    assert list(postings) == sorted(postings)


def test_custom_tokenizer_respected():
    graph = _graph(["Relational Databases"])
    index = InvertedIndex.from_graph(
        graph, Tokenizer(TokenizerConfig(stem=False))
    )
    assert list(index.nodes_for_term("databases")) == [0]
    assert len(index.nodes_for_term("database")) == 0


def test_nbytes_and_counts(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    assert index.n_terms > 50
    assert index.n_nodes == tiny_graph.n_nodes
    assert index.nbytes() > 0
