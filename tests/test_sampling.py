"""Average-distance sampling (Table II's A and deviation)."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, star_graph
from repro.graph.sampling import estimate_average_distance


def test_star_graph_average_distance():
    # In a large star, almost every sampled pair is leaf-leaf at distance 2.
    star = star_graph(40)
    estimate = estimate_average_distance(star, n_pairs=400, seed=1)
    assert 1.7 <= estimate.average <= 2.0
    assert estimate.n_sampled > 0
    assert estimate.rounded() == 2


def test_chain_average_within_bounds():
    chain = chain_graph(10)
    estimate = estimate_average_distance(chain, n_pairs=500, seed=2)
    # Expected average pair distance of a 10-path is (n+1)/3 ≈ 3.67.
    assert 2.5 <= estimate.average <= 5.0
    assert estimate.deviation > 0


def test_deterministic_given_seed(tiny_graph):
    a = estimate_average_distance(tiny_graph, n_pairs=200, seed=7)
    b = estimate_average_distance(tiny_graph, n_pairs=200, seed=7)
    assert a == b


def test_different_seeds_differ_slightly(tiny_graph):
    a = estimate_average_distance(tiny_graph, n_pairs=200, seed=1)
    b = estimate_average_distance(tiny_graph, n_pairs=200, seed=2)
    # Estimates agree roughly but the samples differ.
    assert abs(a.average - b.average) < 1.0


def test_requires_two_nodes():
    builder = GraphBuilder()
    builder.add_node("only")
    with pytest.raises(ValueError):
        estimate_average_distance(builder.build(), n_pairs=10)


def test_disconnected_graph_restricted_to_giant_component():
    builder = GraphBuilder()
    for i in range(6):
        builder.add_node(str(i))
    for i in range(4):
        builder.add_edge(i, i + 1, "p")  # path of 5 nodes + 1 isolate
    graph = builder.build()
    estimate = estimate_average_distance(
        graph, n_pairs=100, seed=0, restrict_to_largest_component=True
    )
    assert estimate.n_sampled > 0
    assert estimate.average > 0
