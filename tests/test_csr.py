"""CSR adjacency and KnowledgeGraph structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRAdjacency


def _adjacency_from(n, edges):
    sources = np.array([e[0] for e in edges], dtype=np.int64)
    targets = np.array([e[1] for e in edges], dtype=np.int64)
    labels = np.array([e[2] for e in edges], dtype=np.int64)
    return CSRAdjacency.from_edge_arrays(n, sources, targets, labels)


def test_from_edge_arrays_groups_by_source():
    adj = _adjacency_from(4, [(0, 1, 0), (0, 2, 1), (2, 3, 0)])
    assert adj.n_nodes == 4
    assert adj.n_entries == 3
    assert list(adj.neighbors(0)) == [1, 2]
    assert list(adj.neighbors(1)) == []
    assert list(adj.neighbors(2)) == [3]
    assert adj.degree(0) == 2


def test_neighbor_lists_sorted_regardless_of_input_order():
    a = _adjacency_from(3, [(0, 2, 1), (0, 1, 0)])
    b = _adjacency_from(3, [(0, 1, 0), (0, 2, 1)])
    assert list(a.neighbors(0)) == list(b.neighbors(0)) == [1, 2]
    assert list(a.neighbor_labels(0)) == list(b.neighbor_labels(0))


def test_edges_of_yields_label_pairs():
    adj = _adjacency_from(3, [(0, 1, 7), (0, 2, 3)])
    assert list(adj.edges_of(0)) == [(1, 7), (2, 3)]


def test_degrees_vector():
    adj = _adjacency_from(3, [(0, 1, 0), (0, 2, 0), (1, 2, 0)])
    assert list(adj.degrees()) == [2, 1, 0]


def test_out_of_range_edges_rejected():
    with pytest.raises(ValueError):
        _adjacency_from(2, [(0, 5, 0)])
    with pytest.raises(ValueError):
        _adjacency_from(2, [(-1, 0, 0)])


def test_mismatched_arrays_rejected():
    with pytest.raises(ValueError):
        CSRAdjacency.from_edge_arrays(
            2,
            np.array([0]),
            np.array([1, 0]),
            np.array([0]),
        )


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        CSRAdjacency(
            indptr=np.array([1, 2]),
            indices=np.array([0], dtype=np.int32),
            labels=np.array([0], dtype=np.int32),
        )


def test_graph_counts_and_degrees():
    builder = GraphBuilder()
    a = builder.add_node("a")
    b = builder.add_node("b")
    c = builder.add_node("c")
    builder.add_edge(a, b, "p")
    builder.add_edge(c, b, "p")
    graph = builder.build()
    assert graph.n_nodes == 3
    assert graph.n_edges == 2
    assert graph.out_degree(a) == 1
    assert graph.in_degree(b) == 2
    # Bi-directed traversal degree counts both directions.
    assert graph.degree(b) == 2
    assert set(graph.neighbors(b)) == {a, c}


def test_in_label_counts():
    builder = GraphBuilder()
    hub = builder.add_node("hub")
    for i in range(3):
        leaf = builder.add_node(f"leaf{i}")
        builder.add_edge(leaf, hub, "instance of")
    other = builder.add_node("other")
    builder.add_edge(other, hub, "related to")
    graph = builder.build()
    counts = graph.in_label_counts(hub)
    by_name = {graph.predicate_name(label): n for label, n in counts.items()}
    assert by_name == {"instance of": 3, "related to": 1}


def test_validate_passes_on_builder_output(random20):
    random20.validate()


def test_degree_statistics(star6):
    stats = star6.degree_statistics()
    assert stats["max"] == 6.0
    assert stats["median"] == 1.0


def test_storage_nbytes_positive(tiny_graph):
    assert tiny_graph.storage_nbytes() > 0


def test_edge_list_roundtrip():
    builder = GraphBuilder()
    for i in range(4):
        builder.add_node(str(i))
    edges = [(0, 1, "a"), (1, 2, "b"), (3, 0, "a")]
    for s, t, p in edges:
        builder.add_edge(s, t, p)
    graph = builder.build()
    listed = {
        (s, t, graph.predicate_name(lab)) for s, t, lab in graph.edge_list()
    }
    assert listed == set(edges)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_csr_property_neighbors_match_edge_set(data):
    n = data.draw(st.integers(min_value=1, max_value=12))
    edges = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(0, 3),
            ),
            max_size=40,
        )
    )
    adj = _adjacency_from(n, edges)
    expected = {}
    for s, t, lab in edges:
        expected.setdefault(s, []).append((t, lab))
    for node in range(n):
        assert sorted(adj.edges_of(node)) == sorted(expected.get(node, []))
    assert adj.n_entries == len(edges)


# ---------------------------------------------------------------------------
# Immutability: the adjacency is shared across backends (and fork pools),
# so the base arrays and every cached view must reject in-place writes.
# ---------------------------------------------------------------------------
def test_base_arrays_are_frozen_after_construction():
    adj = _adjacency_from(4, [(0, 1, 0), (0, 2, 1), (2, 3, 0)])
    for array in (adj.indptr, adj.indices, adj.labels):
        assert not array.flags.writeable
        with pytest.raises(ValueError):
            array[0] = 0


def test_cached_views_are_frozen_including_already_int64_indices():
    adj = _adjacency_from(4, [(0, 1, 0), (0, 2, 1), (2, 3, 0)])
    assert not adj.degree_array.flags.writeable
    assert not adj.indices64.flags.writeable
    with pytest.raises(ValueError):
        adj.indices64[0] = 99
    # An adjacency whose stored indices are already int64 must hand back
    # the (frozen) stored array, not a fresh writable one.
    wide = CSRAdjacency(
        indptr=np.array([0, 1], dtype=np.int64),
        indices=np.array([0], dtype=np.int64),
        labels=np.array([0], dtype=np.int32),
    )
    assert wide.indices64 is wide.indices
    assert not wide.indices64.flags.writeable
