"""LockedDictEngine (CPU-Par-d) equivalence with the matrix engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EmptyQueryError, KeywordSearchEngine
from repro.parallel import LockedDictEngine, SequentialBackend
from repro.core.activation import activation_levels
from repro.core.weights import node_weights
from repro.graph.generators import random_graph
from repro.text.inverted_index import InvertedIndex


def _engines(graph):
    matrix_engine = KeywordSearchEngine(
        graph, backend=SequentialBackend(), average_distance=3.0
    )
    locked = LockedDictEngine(
        graph, matrix_engine.weights, matrix_engine.index, n_threads=1
    )
    return matrix_engine, locked


def _answer_signature(result):
    return [
        (
            answer.graph.central_node,
            answer.graph.depth,
            tuple(sorted(answer.graph.nodes)),
            tuple(sorted(answer.graph.edges)),
            round(answer.score, 9),
        )
        for answer in result.answers
    ]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 3000),
    alpha=st.sampled_from([0.05, 0.1, 0.4]),
    k=st.integers(1, 8),
)
def test_locked_matches_matrix_engine_on_random_graphs(seed, alpha, k):
    graph = random_graph(
        25,
        70,
        seed=seed,
        vocabulary=("alpha", "beta", "gamma", "delta"),
        words_per_node=2,
    )
    matrix_engine, locked = _engines(graph)
    query = "alpha beta gamma"
    expected = matrix_engine.search(query, k=k, alpha=alpha)
    actual = locked.search(query, matrix_engine.activation_for(alpha), k=k)
    assert _answer_signature(expected) == _answer_signature(actual)
    assert expected.depth == actual.depth
    assert expected.n_central_nodes == actual.n_central_nodes
    assert expected.terminated == actual.terminated


def test_locked_multithreaded_matches_single_thread(tiny_kb):
    graph, _ = tiny_kb
    weights = node_weights(graph)
    index = InvertedIndex.from_graph(graph)
    activation = activation_levels(weights, 3.0, 0.1)
    single = LockedDictEngine(graph, weights, index, n_threads=1)
    multi = LockedDictEngine(graph, weights, index, n_threads=4)
    query = "machine learning data"
    a = single.search(query, activation, k=10)
    b = multi.search(query, activation, k=10)
    assert _answer_signature(a) == _answer_signature(b)


def test_locked_empty_query_raises(tiny_kb):
    graph, _ = tiny_kb
    weights = node_weights(graph)
    index = InvertedIndex.from_graph(graph)
    locked = LockedDictEngine(graph, weights, index)
    with pytest.raises(EmptyQueryError):
        locked.search("zzzzz", np.zeros(graph.n_nodes, dtype=np.int32))


def test_locked_validates_threads(tiny_kb):
    graph, _ = tiny_kb
    with pytest.raises(ValueError):
        LockedDictEngine(
            graph, node_weights(graph), InvertedIndex.from_graph(graph),
            n_threads=0,
        )


def test_locked_reports_phases(tiny_kb):
    graph, _ = tiny_kb
    weights = node_weights(graph)
    index = InvertedIndex.from_graph(graph)
    locked = LockedDictEngine(graph, weights, index, n_threads=2)
    activation = activation_levels(weights, 3.0, 0.1)
    result = locked.search("knowledge graph", activation, k=5)
    ms = result.milliseconds()
    assert "expansion" in ms and "top_down_processing" in ms
    assert result.peak_state_nbytes > 0
