"""Edit-distance term suggestions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.text.inverted_index import InvertedIndex
from repro.text.suggest import levenshtein, suggest_for_dropped, suggest_terms


# ---------------------------------------------------------------------------
# Levenshtein
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "a, b, distance",
    [
        ("", "", 0),
        ("abc", "abc", 0),
        ("abc", "", 3),
        ("", "xyz", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("graph", "grape", 1),
        ("sql", "sparql", 3),
    ],
)
def test_levenshtein_known_values(a, b, distance):
    assert levenshtein(a, b) == distance
    assert levenshtein(b, a) == distance


def test_levenshtein_cap_prunes():
    assert levenshtein("aaaaaaaa", "bbbbbbbb", cap=2) == 3  # cap + 1


@settings(max_examples=60, deadline=None)
@given(
    a=st.text(alphabet="abcde", max_size=8),
    b=st.text(alphabet="abcde", max_size=8),
    c=st.text(alphabet="abcde", max_size=8),
)
def test_levenshtein_metric_properties(a, b, c):
    assert levenshtein(a, b) == levenshtein(b, a)
    assert (levenshtein(a, b) == 0) == (a == b)
    # Triangle inequality.
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


# ---------------------------------------------------------------------------
# Suggestions
# ---------------------------------------------------------------------------
def _index():
    builder = GraphBuilder()
    texts = ["wikidata portal", "wikidata hub", "freebase mirror", "sparql"]
    for text in texts:
        builder.add_node(text)
    builder.add_edge(0, 1, "p")
    return InvertedIndex.from_graph(builder.build())


def test_suggest_finds_close_terms():
    index = _index()
    matches = suggest_terms(index, "wikidta")  # transposition-ish typo
    assert matches
    assert matches[0][0] == "wikidata"
    assert matches[0][1] <= 2


def test_suggest_orders_by_distance_then_frequency():
    index = _index()
    # 'wikidata' occurs twice, 'freebase' once; a needle equidistant to
    # both must put the more frequent term first.
    matches = suggest_terms(index, "sparq")
    assert matches[0][0] == "sparql"


def test_suggest_no_match_beyond_distance():
    index = _index()
    assert suggest_terms(index, "zzzzzzzzzz") == []


def test_suggest_stopword_normalizes_away():
    index = _index()
    assert suggest_terms(index, "the") == []


def test_suggest_for_dropped_mapping():
    index = _index()
    suggestions = suggest_for_dropped(index, ("wikidta", "qqqqqqqq"))
    assert "wikidta" in suggestions
    assert "wikidata" in suggestions["wikidta"]
    assert "qqqqqqqq" not in suggestions


def test_service_includes_suggestions(tiny_kb):
    from repro import KeywordSearchEngine, VectorizedBackend
    from repro.service import SearchService

    graph, _ = tiny_kb
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    service = SearchService(engine)
    status, payload = service.handle_search("machin learnig")  # typos
    # Either some term matched (200 with suggestions for the dropped) or
    # nothing matched (404 with suggestions) — both must suggest.
    assert "suggestions" in payload or not payload.get("dropped_terms")
    status2, payload2 = service.handle_search("zzzzzz wikidatta")
    assert status2 == 404
    assert isinstance(payload2["suggestions"], dict)
