"""ObjectRank authority baseline."""

import numpy as np
import pytest

from repro.baselines.objectrank import ObjectRank, ObjectRankConfig
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, star_graph
from repro.text.inverted_index import InvertedIndex


def _objectrank(graph, **kwargs):
    return ObjectRank(graph, InvertedIndex.from_graph(graph), **kwargs)


def test_pagerank_mass_conserved():
    graph = chain_graph(6)
    searcher = _objectrank(graph)
    rank, iterations = searcher._personalized_pagerank(np.array([0]))
    assert rank.sum() == pytest.approx(1.0, abs=1e-8)
    assert iterations >= 1
    assert (rank >= 0).all()


def test_teleport_set_gets_most_mass():
    graph = chain_graph(9)
    searcher = _objectrank(graph)
    rank, _ = searcher._personalized_pagerank(np.array([4]))
    assert rank[4] == rank.max()
    # Mass decays with distance from the teleport node.
    assert rank[3] > rank[1] > rank[0]


def test_symmetric_chain_is_symmetric():
    graph = chain_graph(7)
    searcher = _objectrank(graph)
    rank, _ = searcher._personalized_pagerank(np.array([3]))
    assert rank[2] == pytest.approx(rank[4], rel=1e-9)
    assert rank[0] == pytest.approx(rank[6], rel=1e-9)


def test_hub_accumulates_authority():
    star = star_graph(10)
    star.node_text[3] = "apple leaf"
    index = InvertedIndex.from_graph(star)
    searcher = ObjectRank(star, index)
    rank, _ = searcher._personalized_pagerank(np.array([3]))
    # All mass flowing from the leaf reaches the hub first.
    assert rank[0] > max(rank[i] for i in range(1, 11) if i != 3)


def test_search_combines_keywords_with_and_semantics():
    # Star around a bridge: node 3 carries both keywords, nodes 0 and 2
    # carry one each. AND-combination must put node 3 first — it receives
    # teleport mass in *both* per-keyword rankings.
    builder = GraphBuilder()
    texts = ["apple", "bridge", "banana", "apple banana mix"]
    for text in texts:
        builder.add_node(text)
    builder.add_edge(0, 1, "p")
    builder.add_edge(2, 1, "p")
    builder.add_edge(3, 1, "p")
    graph = builder.build()
    result = _objectrank(graph).search("apple banana", k=4)
    assert result.answers
    by_node = {answer.node: answer.score for answer in result.answers}
    # The double-carrier outranks both single carriers (its teleport mass
    # arrives in every per-keyword ranking); the connecting hub (node 1)
    # may rank first overall — authority flows through it for both
    # keywords, the behaviour ObjectRank is known for.
    assert by_node[3] > by_node[0]
    assert by_node[3] > by_node[2]
    scores = [answer.score for answer in result.answers]
    assert scores == sorted(scores, reverse=True)


def test_search_unmatched_raises(chain5):
    with pytest.raises(ValueError):
        _objectrank(chain5).search("zzz")


def test_damping_validated(chain5):
    with pytest.raises(ValueError):
        _objectrank(chain5, config=ObjectRankConfig(damping=1.0))


def test_result_node_sets_are_singletons():
    graph = chain_graph(4)
    graph.node_text[0] = "apple"
    graph.node_text[3] = "banana"
    index = InvertedIndex.from_graph(graph)
    result = ObjectRank(graph, index).search("apple banana", k=2)
    for node_set in result.answer_node_sets():
        assert len(node_set) == 1


def test_convergence_within_iteration_cap(tiny_graph):
    searcher = _objectrank(tiny_graph)
    result = searcher.search("machine learning", k=5)
    assert result.iterations < 2 * searcher.config.max_iterations
    assert result.answers
