"""Search tracing (per-level observation of the bottom-up loop)."""

import numpy as np

from repro.core.bottom_up import BottomUpSearch
from repro.core.trace import SearchTrace
from repro.graph.generators import chain_graph

from conftest import zero_activation


def _sets(*groups):
    return [np.array(g, dtype=np.int64) for g in groups]


def test_trace_on_chain():
    chain = chain_graph(5)
    trace = SearchTrace()
    BottomUpSearch(chain).run(
        _sets([0], [4]), zero_activation(chain), k=1, observer=trace
    )
    assert trace.n_levels == 3  # levels 0, 1, 2 (central found at 2)
    assert trace.frontier_sizes()[0] == 2  # both sources
    # Level-0 expansion hits v1 and v3 (2 cells); level-1 hits v2 twice.
    assert trace.records[0].hits == 2
    assert trace.records[1].hits == 2
    assert trace.records[2].new_central_nodes == [(2, 2)]


def test_trace_fig1(fig1):
    trace = SearchTrace()
    BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1, observer=trace
    )
    # Example 4: no hits at level 0 (v3 inactive), hits start at level 1.
    assert trace.records[0].hits == 0
    assert trace.records[1].hits > 0
    assert trace.records[-1].new_central_nodes == [(2, 4)]
    assert trace.total_hits() == sum(r.hits for r in trace.records)


def test_trace_describe_format(fig1):
    trace = SearchTrace()
    BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1, observer=trace
    )
    text = trace.describe()
    assert "level" in text.splitlines()[0]
    assert "v2(d=4)" in text
    assert len(text.splitlines()) == trace.n_levels + 1


def test_trace_absent_observer_changes_nothing(fig1):
    plain = BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1
    )
    traced = BottomUpSearch(fig1.graph).run(
        _sets(*fig1.keyword_nodes), fig1.activation, k=1,
        observer=SearchTrace(),
    )
    assert plain.central_nodes == traced.central_nodes
    assert np.array_equal(plain.state.matrix, traced.state.matrix)
