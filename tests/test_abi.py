"""Tests for the kernel ABI contract verifier (``repro.analysis.abi``).

The verifier's job is to make C ↔ ctypes ↔ store drift impossible to
land silently, so the tests cover all three legs: the C prototype/struct
parser, the ctypes declaration extractor, the cross-check (clean on the
real repo, loud on seeded drift), and the ``.csrstore`` header contract.
"""

import textwrap

import pytest

from repro.analysis import abi


# ---------------------------------------------------------------------------
# C prototype parsing
# ---------------------------------------------------------------------------
def test_parse_c_exports_basic_prototype():
    functions = abi.parse_c_exports(
        textwrap.dedent(
            """
            int64_t add_all(int64_t n, const int64_t* values) {
                return 0;
            }
            """
        )
    )
    assert len(functions) == 1
    fn = functions[0]
    assert fn.name == "add_all"
    assert str(fn.restype) == "int64"
    assert [(p.name, str(p.ctype)) for p in fn.params] == [
        ("n", "int64"),
        ("values", "int64*"),
    ]


def test_parse_c_exports_skips_static_and_control_flow():
    functions = abi.parse_c_exports(
        textwrap.dedent(
            """
            static void helper(int64_t x) { }

            int64_t exported(int64_t x) {
                if (x) {
                    return x;
                }
                while (x) { }
                return 0;
            }
            """
        )
    )
    assert [fn.name for fn in functions] == ["exported"]


def test_parse_c_exports_pointer_and_unsigned_params():
    (fn,) = abi.parse_c_exports(
        "void scatter(uint8_t* matrix, const uint64_t* words, uint8_t v) {\n}"
    )
    assert str(fn.restype) == "void"
    assert [str(p.ctype) for p in fn.params] == ["uint8*", "uint64*", "uint8"]


def test_parse_c_exports_rejects_unknown_types():
    with pytest.raises(abi.AbiParseError):
        abi.parse_c_exports("wchar_t weird(wchar_t x) {\n}")


def test_parse_c_structs_natural_alignment():
    (struct,) = abi.parse_c_structs(
        textwrap.dedent(
            """
            typedef struct {
                int32_t a;
                int64_t b;
                uint8_t c;
            } Packed;
            """
        )
    )
    assert struct.name == "Packed"
    offsets = {f.name: f.offset for f in struct.fields}
    # b is 8-aligned, so 4 bytes of padding follow a.
    assert offsets == {"a": 0, "b": 8, "c": 16}
    assert struct.size == 24  # trailing pad to 8-byte struct alignment


def test_parse_real_kernel_exports_all_bound_symbols():
    source = abi.KERNEL_SOURCE_PATH.read_text(encoding="utf-8")
    names = {fn.name for fn in abi.parse_c_exports(source)}
    assert {
        "fused_expand",
        "fused_expand_lanes",
        "whole_level_step",
        "build_hitting_dag",
        "extract_closure",
        "extract_graph",
    } <= names


# ---------------------------------------------------------------------------
# The cross-check: clean on the real repo, loud on drift
# ---------------------------------------------------------------------------
def test_abi_check_clean_on_real_sources():
    report = abi.run_abi_check()
    assert report.ok, "\n".join(str(f) for f in report.findings)
    assert report.functions_checked >= 6
    assert report.sections_checked >= 4


def test_abi_check_injected_swap_caught_as_type_mismatch():
    report = abi.run_abi_check(inject="swap")
    assert not report.ok
    assert "RPRABI04" in report.codes()
    assert any("fused_expand" in f.message for f in report.findings)


def test_abi_check_rejects_unknown_injection():
    with pytest.raises(ValueError):
        abi.run_abi_check(inject="bogus")


def test_abi_check_missing_binding_found():
    kernel = "int64_t brand_new_symbol(int64_t x) {\n    return x;\n}\n"
    native = abi.NATIVE_SOURCE_PATH.read_text(encoding="utf-8")
    report = abi.run_abi_check(kernel_source=kernel, native_source=native)
    assert "RPRABI01" in report.codes()


def test_abi_check_arity_mismatch_found():
    kernel = abi.KERNEL_SOURCE_PATH.read_text(encoding="utf-8")
    # Drop one parameter from fused_expand's C prototype.
    assert "int64_t* n_dups)" in kernel
    drifted = kernel.replace(
        "int64_t* n_dups)", "int64_t* n_dups, int64_t extra)", 1
    )
    native = abi.NATIVE_SOURCE_PATH.read_text(encoding="utf-8")
    report = abi.run_abi_check(kernel_source=drifted, native_source=native)
    assert "RPRABI03" in report.codes()


def test_abi_check_restype_mismatch_found():
    kernel = abi.KERNEL_SOURCE_PATH.read_text(encoding="utf-8")
    drifted = kernel.replace(
        "int64_t fused_expand(", "int32_t fused_expand(", 1
    )
    native = abi.NATIVE_SOURCE_PATH.read_text(encoding="utf-8")
    report = abi.run_abi_check(kernel_source=drifted, native_source=native)
    assert "RPRABI05" in report.codes()


# ---------------------------------------------------------------------------
# Store header contract
# ---------------------------------------------------------------------------
def test_store_contract_sections_match_kernel_views():
    from repro.graph import store

    dtypes = dict(store.SECTION_DTYPES)
    for section, (kind, bits) in abi.KERNEL_VIEW_CONTRACT.items():
        assert section in dtypes, section
        import numpy as np

        dtype = np.dtype(dtypes[section])
        assert dtype.kind == {"int": "i", "uint": "u"}[kind], section
        assert dtype.itemsize * 8 == bits, section


def test_store_contract_violation_detected(monkeypatch):
    from repro.graph import store

    drifted = tuple(
        (name, "<i4" if name == "adj_indptr" else dtype)
        for name, dtype in store.SECTION_DTYPES
    )
    monkeypatch.setattr(store, "SECTION_DTYPES", drifted)
    findings = []
    abi._check_store_contract(findings)
    assert any(f.code == "RPRABI07" for f in findings)


# ---------------------------------------------------------------------------
# Smoke fixture bindings ride the same contract
# ---------------------------------------------------------------------------
def test_smoke_bindings_covered_by_abi_check():
    from repro.analysis import sanitize

    source = abi.SMOKE_SOURCE_PATH.read_text(encoding="utf-8")
    names = {fn.name for fn in abi.parse_c_exports(source)}
    assert names == set(sanitize.SMOKE_BINDINGS)


def test_ctypes_object_conversion_handles_platform_aliases():
    import ctypes

    assert str(abi._ctypes_object_to_ctype(ctypes.c_int64)) == "int64"
    assert str(abi._ctypes_object_to_ctype(ctypes.c_uint8)) == "uint8"
    assert str(abi._ctypes_object_to_ctype(ctypes.c_void_p)) == "void*"
    assert str(abi._ctypes_object_to_ctype(None)) == "void"
