"""Persistent pinned worker pool: lifecycle, crash recovery, toggles.

The pool (:mod:`repro.parallel.pool`) is the serving-side half of the
whole-level PR: workers fork once per (graph, Tnum), pin the CSR arrays,
stay warm across queries and across backend instances, and respawn (with
the level retried — idempotent writes make the re-run safe, Theorem V.2)
when one crashes. These tests pin that contract:

* stable PIDs across consecutive queries, zero respawns;
* a killed worker triggers exactly one respawn and the batch retries to
  the correct result;
* shutdown unlinks the shared state segment (no /dev/shm leak);
* ``REPRO_POOL_PERSIST`` / ``REPRO_POOL_WORKERS`` switch behavior and
  are registered env vars (RPR004).
"""

import numpy as np
import pytest

from repro.core.bottom_up import BottomUpSearch
from repro.parallel import ProcessPoolBackend, SequentialBackend
from repro.parallel import pool as pool_module
from repro.parallel.pool import WorkerPool, get_pool

from conftest import zero_activation

pytestmark = pytest.mark.skipif(
    not ProcessPoolBackend.is_supported(),
    reason="requires the fork start method",
)


@pytest.fixture(autouse=True)
def _drain_warm_pools():
    yield
    pool_module.shutdown_all()


def _sets(*groups):
    return [np.array(g, dtype=np.int64) for g in groups]


def _crash_once(marker_path):
    """Kill the worker on first execution, succeed on the retry."""
    import os

    if not os.path.exists(marker_path):
        open(marker_path, "w").close()
        os._exit(1)
    return os.getpid()


def _signature(result):
    return (
        sorted(result.central_nodes),
        result.state.matrix.tobytes(),
    )


def test_stable_pids_across_queries(chain5):
    """Two sequential queries reuse the same forked workers."""
    backend = ProcessPoolBackend(chain5, n_processes=2, persistent=True)
    first_pids = backend.warm()
    assert len(first_pids) == 2
    searcher = BottomUpSearch(chain5, backend)
    searcher.run(_sets([0], [4]), zero_activation(chain5), k=1)
    mid_pids = backend.worker_pids()
    searcher.run(_sets([1], [3]), zero_activation(chain5), k=1)
    assert backend.worker_pids() == first_pids == mid_pids
    assert backend.respawn_count == 0


def test_pool_shared_across_backend_instances(chain5):
    """The registry hands consecutive backends the same warm pool."""
    first = ProcessPoolBackend(chain5, n_processes=2, persistent=True)
    pids = first.warm()
    second = ProcessPoolBackend(chain5, n_processes=2, persistent=True)
    assert second.pool is first.pool
    assert second.worker_pids() == pids
    # A different Tnum is a different pool.
    third = ProcessPoolBackend(chain5, n_processes=1, persistent=True)
    assert third.pool is not first.pool


def test_crash_respawns_and_retries(chain5, tmp_path):
    """A killed worker costs one respawn; the query still answers right."""
    backend = ProcessPoolBackend(chain5, n_processes=2, persistent=True)
    backend.warm()
    pool = backend.pool
    with pytest.raises(pool_module.BrokenProcessPool):
        # Exhaust the retry budget so the crash surfaces deterministically,
        # proving the harness really kills workers.
        pool.run_tasks(pool_module._crash_worker, [None], retries=0)
    assert pool.respawn_count == 0  # no retry requested, no respawn

    # With the budget exhausted the executor stays broken; the caller
    # owns the recovery decision.
    pool.respawn()
    backend.warm()
    before = pool.respawn_count
    marker = str(tmp_path / "crashed-once")
    results = pool.run_tasks(_crash_once, [marker])
    # One crash, one respawn, and the retried batch ran on fresh workers.
    assert pool.respawn_count == before + 1
    assert all(isinstance(pid, int) for pid in results)

    result = BottomUpSearch(chain5, backend).run(
        _sets([0], [4]), zero_activation(chain5), k=1
    )
    reference = BottomUpSearch(chain5, SequentialBackend()).run(
        _sets([0], [4]), zero_activation(chain5), k=1
    )
    assert _signature(result) == _signature(reference)


def test_crash_retry_transparent(chain5, tmp_path):
    """run_tasks retries transparently: the caller sees only the result."""
    pool = get_pool(chain5, 2)
    pool.warm()
    marker = str(tmp_path / "crashed-once")
    pool.run_tasks(_crash_once, [marker])
    pids = pool.run_tasks(pool_module._worker_pid, [None, None])
    assert all(isinstance(pid, int) for pid in pids)
    assert pool.respawn_count == 1


def test_shutdown_unlinks_segment(chain5):
    """Shutdown must release the shared block (clean /dev/shm)."""
    from multiprocessing import shared_memory

    pool = get_pool(chain5, 1)
    segment = pool.ensure_segment(1024)
    name = segment.name
    pool.shutdown()
    assert pool._segment is None
    assert not pool.alive
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_segment_grows_and_is_reused(chain5):
    pool = get_pool(chain5, 1)
    small = pool.ensure_segment(512)
    assert pool.ensure_segment(256) is small
    grown = pool.ensure_segment(2048)
    assert grown is not small
    assert pool.ensure_segment(2048) is grown


def test_persist_toggle(chain5, monkeypatch):
    """REPRO_POOL_PERSIST=0 reverts to a private pool per backend."""
    from repro.obs.config import ENV_POOL_PERSIST

    monkeypatch.setenv(ENV_POOL_PERSIST, "0")
    backend = ProcessPoolBackend(chain5, n_processes=1)
    assert backend._owns_pool
    other = ProcessPoolBackend(chain5, n_processes=1)
    assert other.pool is not backend.pool
    backend.close()
    assert not backend.pool.alive
    other.close()

    monkeypatch.delenv(ENV_POOL_PERSIST)
    warm = ProcessPoolBackend(chain5, n_processes=1)
    assert not warm._owns_pool
    warm.close()
    # close() on a persistent backend leaves the warm pool running.
    assert warm.pool.alive


def test_workers_override_toggle(chain5, monkeypatch):
    """REPRO_POOL_WORKERS globally overrides the constructor Tnum."""
    from repro.obs.config import ENV_POOL_WORKERS

    monkeypatch.setenv(ENV_POOL_WORKERS, "3")
    backend = ProcessPoolBackend(chain5, n_processes=1, persistent=True)
    assert backend.n_processes == 3
    assert backend.pool.n_workers == 3


def test_env_toggles_registered():
    """RPR004: pool knobs must be documented ENV_* constants."""
    import inspect

    from repro.analysis.lint import registered_env_vars
    from repro.obs import config

    registered = registered_env_vars(inspect.getsource(config))
    assert config.ENV_POOL_PERSIST in registered
    assert config.ENV_POOL_WORKERS in registered


def test_validates_worker_count(chain5):
    with pytest.raises(ValueError):
        WorkerPool(chain5, 0)


def test_run_tasks_after_shutdown_raises(chain5):
    pool = get_pool(chain5, 1)
    pool.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        pool.run_tasks(pool_module._worker_pid, [None])
