"""End-to-end KeywordSearchEngine behaviour."""

import numpy as np
import pytest

from repro.core.engine import (
    EmptyQueryError,
    EngineConfig,
    KeywordSearchEngine,
)
from repro.parallel import SequentialBackend, VectorizedBackend

from conftest import zero_activation


@pytest.fixture(scope="module")
def engine(request):
    tiny_kb = request.getfixturevalue("tiny_kb")
    graph, _ = tiny_kb
    return KeywordSearchEngine(graph, backend=VectorizedBackend())


def test_fig1_end_to_end(fig1):
    engine = KeywordSearchEngine(fig1.graph, backend=SequentialBackend())
    result = engine.search(
        "xml rdf sql", k=1, activation_override=fig1.activation
    )
    assert result.keywords == ("xml", "rdf", "sql")
    assert result.depth == fig1.expected_depth
    top = result.answers[0].graph
    assert top.central_node == fig1.central_node
    assert 9 in top.nodes and 4 in top.nodes and 5 in top.nodes


def test_unknown_terms_dropped(engine):
    result = engine.search("database xyzzyplugh", k=3)
    assert "xyzzyplugh" in result.dropped_terms
    assert result.keywords == ("databas",)


def test_all_terms_unknown_raises(engine):
    with pytest.raises(EmptyQueryError):
        engine.search("qqqq zzzz")


def test_empty_query_raises(engine):
    with pytest.raises(EmptyQueryError):
        engine.search("the of and")  # all stopwords


def test_k_limits_answer_count(engine):
    result = engine.search("machine learning data", k=4)
    assert len(result.answers) <= 4
    assert len(result) == len(result.answers)


def test_answers_sorted_by_score(engine):
    result = engine.search("knowledge graph query", k=10)
    scores = [answer.score for answer in result.answers]
    assert scores == sorted(scores)


def test_every_answer_covers_all_keywords(engine):
    result = engine.search("machine learning translation", k=10)
    q = len(result.keywords)
    for answer in result.answers:
        assert answer.graph.covers_all(q)
        assert answer.graph.all_nodes_reach_central()


def test_search_terms_equivalent_to_search(engine):
    a = engine.search("knowledge base sparql", k=5)
    b = engine.search_terms(["knowledge", "base", "sparql"], k=5)
    assert [x.graph.central_node for x in a.answers] == [
        x.graph.central_node for x in b.answers
    ]


def test_alpha_cache_reused(engine):
    first = engine.activation_for(0.1)
    second = engine.activation_for(0.1)
    assert first is second
    other = engine.activation_for(0.4)
    assert other is not first
    assert (other <= first).all()


def test_duplicate_terms_collapse(engine):
    result = engine.search("learning learning learning", k=2)
    assert result.keywords == ("learn",)


def test_timer_has_all_phases(engine):
    result = engine.search("graph database", k=3)
    ms = result.milliseconds()
    for phase in (
        "initialization",
        "enqueuing_frontiers",
        "identifying_central_nodes",
        "expansion",
        "top_down_processing",
        "total",
    ):
        assert phase in ms
    assert ms["total"] >= ms["expansion"]


def test_storage_report_scales_with_knum(engine):
    small = engine.storage_report(knum=2)
    large = engine.storage_report(knum=10)
    assert small.pre_storage == large.pre_storage
    assert large.max_running_storage > small.max_running_storage
    assert large.overhead_ratio > 1.0
    mb = large.as_megabytes()
    assert mb["pre_storage_mb"] > 0


def test_weights_length_validated(tiny_graph):
    with pytest.raises(ValueError):
        KeywordSearchEngine(
            tiny_graph, weights=np.zeros(3), average_distance=3.0
        )


def test_engine_accepts_precomputed_artifacts(tiny_kb):
    graph, _ = tiny_kb
    base = KeywordSearchEngine(graph)
    clone = KeywordSearchEngine(
        graph,
        index=base.index,
        weights=base.weights,
        average_distance=base.average_distance,
    )
    a = base.search("machine learning", k=3)
    b = clone.search("machine learning", k=3)
    assert [x.graph.central_node for x in a.answers] == [
        x.graph.central_node for x in b.answers
    ]


def test_config_defaults_applied(tiny_kb):
    graph, _ = tiny_kb
    engine = KeywordSearchEngine(
        graph, config=EngineConfig(topk=2, alpha=0.4)
    )
    result = engine.search("machine learning data")
    assert len(result.answers) <= 2
