"""Evaluation harness: precision math, relevance judge, workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.precision import (
    PrecisionRow,
    mean_precision,
    precision_rows,
    top_k_precision,
)
from repro.eval.queries import (
    CannedQuery,
    KeywordWorkload,
    canned_queries,
    canned_query_phrases,
    keyword_frequency_row,
)
from repro.eval.relevance import PhraseCoOccurrenceJudge
from repro.graph.builder import GraphBuilder
from repro.text.inverted_index import InvertedIndex


# ---------------------------------------------------------------------------
# Precision
# ---------------------------------------------------------------------------
def test_top_k_precision_basic():
    flags = [True, False, True, True]
    assert top_k_precision(flags, 2) == 0.5
    assert top_k_precision(flags, 4) == 0.75


def test_top_k_precision_short_list_divides_by_returned():
    assert top_k_precision([True, True], 10) == 1.0
    assert top_k_precision([], 10) == 0.0


def test_top_k_precision_validates_k():
    with pytest.raises(ValueError):
        top_k_precision([True], 0)


@settings(max_examples=40, deadline=None)
@given(flags=st.lists(st.booleans(), max_size=30), k=st.integers(1, 25))
def test_precision_in_unit_interval(flags, k):
    value = top_k_precision(flags, k)
    assert 0.0 <= value <= 1.0


def test_precision_rows_and_mean():
    row = precision_rows("Q1", "m", [True, False], cutoffs=(1, 2))
    assert row.precision_at == {1: 1.0, 2: 0.5}
    rows = [row, PrecisionRow("Q2", "m", {1: 0.0, 2: 0.5})]
    assert mean_precision(rows, 1) == 0.5
    assert mean_precision(rows, 2) == 0.5
    assert mean_precision([], 1) == 0.0


# ---------------------------------------------------------------------------
# Canned queries
# ---------------------------------------------------------------------------
def test_canned_queries_cover_q1_to_q11():
    queries = canned_queries()
    assert [q.query_id for q in queries] == [f"Q{i}" for i in range(1, 12)]
    for query in queries:
        assert query.phrases
        assert query.text
        assert query.keywords()


def test_canned_phrases_mapping_matches():
    phrases = canned_query_phrases()
    assert phrases["Q6"] == (
        "supervised learning", "gradient descent", "machine translation"
    )


def test_keyword_frequency_row(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    row = keyword_frequency_row(canned_queries()[0], index)
    assert row["query_id"] == "Q1"
    assert row["avg_keyword_frequency"] > 0


# ---------------------------------------------------------------------------
# Relevance judge
# ---------------------------------------------------------------------------
def _phrase_graph():
    builder = GraphBuilder()
    texts = [
        "supervised learning advances",   # coherent phrase node
        "supervised methods",              # split word 1
        "learning curves",                 # split word 2
        "gradient descent tricks",         # second phrase node
    ]
    for text in texts:
        builder.add_node(text)
    builder.add_edge(0, 1, "p")
    builder.add_edge(1, 2, "p")
    builder.add_edge(2, 3, "p")
    return builder.build()


def test_judge_accepts_phrase_coherent_answers():
    graph = _phrase_graph()
    judge = PhraseCoOccurrenceJudge(graph)
    query = CannedQuery("QX", ("supervised learning", "gradient descent"))
    assert judge.is_relevant({0, 3}, query)


def test_judge_rejects_split_phrase_answers():
    graph = _phrase_graph()
    judge = PhraseCoOccurrenceJudge(graph)
    query = CannedQuery("QX", ("supervised learning", "gradient descent"))
    # Words covered, but "supervised" and "learning" come from different
    # nodes: the paper's irrelevance criterion.
    assert not judge.is_relevant({1, 2, 3}, query)


def test_judge_single_word_phrases_trivially_cooccur():
    graph = _phrase_graph()
    judge = PhraseCoOccurrenceJudge(graph)
    query = CannedQuery("QX", ("gradient",))
    assert judge.is_relevant({3}, query)
    assert not judge.is_relevant({0}, query)


def test_judge_node_terms_cached_and_stemmed():
    graph = _phrase_graph()
    judge = PhraseCoOccurrenceJudge(graph)
    terms = judge.node_terms(0)
    assert "supervis" in terms and "learn" in terms
    assert judge.node_terms(0) is terms  # cached


def test_judge_vectorized_over_answers():
    graph = _phrase_graph()
    judge = PhraseCoOccurrenceJudge(graph)
    query = CannedQuery("QX", ("supervised learning",))
    flags = judge.judge_node_sets([{0}, {1, 2}], query)
    assert flags == [True, False]


# ---------------------------------------------------------------------------
# Workload sampler
# ---------------------------------------------------------------------------
def test_workload_samples_distinct_terms(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    workload = KeywordWorkload(index, seed=1)
    query = workload.sample_query(6)
    terms = query.split()
    assert len(terms) == 6
    assert len(set(terms)) == 6


def test_workload_deterministic(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    a = KeywordWorkload(index, seed=5).sample_queries(4, 3)
    b = KeywordWorkload(index, seed=5).sample_queries(4, 3)
    assert a == b


def test_workload_respects_frequency_bounds(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    workload = KeywordWorkload(index, min_frequency=5, seed=0)
    for term in workload.eligible_terms:
        assert len(index.nodes_for_normalized_term(term)) >= 5


def test_workload_terms_stable_under_pipeline(tiny_graph):
    """Porter stems are not idempotent; only stable terms are sampled."""
    index = InvertedIndex.from_graph(tiny_graph)
    workload = KeywordWorkload(index, seed=0)
    for term in workload.eligible_terms:
        assert index.tokenizer.tokenize(term) == [term]


def test_workload_rejects_impossible_bounds(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    with pytest.raises(ValueError):
        KeywordWorkload(index, min_frequency=10**9)


def test_workload_queries_resolve_in_index(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    workload = KeywordWorkload(index, seed=2)
    for query in workload.sample_queries(5, 5):
        pairs = index.query_node_sets(query)
        assert all(len(nodes) > 0 for _, nodes in pairs)
