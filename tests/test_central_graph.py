"""CentralGraph answer object invariants."""

import pytest

from repro.core.central_graph import CentralGraph, SearchAnswer


def _graph():
    return CentralGraph(
        central_node=0,
        depth=2,
        nodes={0, 1, 2, 3},
        edges={(1, 0), (2, 1), (3, 0)},
        keyword_contributions={2: frozenset({0}), 3: frozenset({1})},
    )


def test_shape_accessors():
    graph = _graph()
    assert graph.n_nodes == 4
    assert graph.n_edges == 3
    assert graph.keyword_nodes() == [2, 3]
    assert graph.covered_keywords() == frozenset({0, 1})
    assert graph.covers_all(2)
    assert not graph.covers_all(3)


def test_successors_predecessors():
    graph = _graph()
    assert graph.successors()[2] == [1]
    assert sorted(graph.predecessors()[0]) == [1, 3]


def test_all_nodes_reach_central():
    graph = _graph()
    assert graph.all_nodes_reach_central()
    graph.nodes.add(9)
    assert not graph.all_nodes_reach_central()


def test_contains_is_strict():
    big = _graph()
    small = CentralGraph(0, 1, {0, 1}, {(1, 0)}, {})
    assert big.contains(small)
    assert not small.contains(big)
    assert not big.contains(big)


def test_restricted_to():
    graph = _graph()
    pruned = graph.restricted_to({0, 1, 2})
    assert pruned.nodes == {0, 1, 2}
    assert pruned.edges == {(1, 0), (2, 1)}
    assert pruned.keyword_contributions == {2: frozenset({0})}
    assert pruned.pruned


def test_restricted_to_must_keep_central():
    with pytest.raises(ValueError):
        _graph().restricted_to({1, 2})


def test_describe_mentions_central_and_keywords():
    text = _graph().describe(["zero", "one", "two", "three"])
    assert "CENTRAL" in text
    assert "'zero'" in text
    assert "keywords=0" in text


def test_to_networkx_roundtrip():
    nx_graph = _graph().to_networkx()
    assert nx_graph.number_of_nodes() == 4
    assert nx_graph.number_of_edges() == 3
    assert nx_graph.nodes[0]["central"]
    assert nx_graph.nodes[2]["keywords"] == [0]


def test_search_answer_coverage():
    answer = SearchAnswer(graph=_graph(), keywords=("xml", "rdf"))
    coverage = answer.keyword_text_coverage()
    assert coverage == {"xml": [2], "rdf": [3]}
    answer.graph.score = 1.5
    assert answer.score == 1.5
