"""GPU transfer/memory cost model."""

import pytest

from repro.bench.gpu_model import (
    GTX_1080TI_GLOBAL_MEMORY_BYTES,
    estimate_for_graph,
    estimate_gpu_costs,
    paper_example_transfer_ms,
)


def test_paper_worked_example():
    """30M nodes × 10 keywords over 12 GB/s ≈ 25 ms (Section V-B)."""
    assert paper_example_transfer_ms() == pytest.approx(25.0, abs=0.5)


def test_matrix_is_one_byte_per_cell():
    estimate = estimate_gpu_costs(1000, 7, pre_storage_bytes=0)
    assert estimate.matrix_bytes == 7000
    assert estimate.total_device_bytes == 7000 + 2000


def test_transfer_scales_linearly():
    small = estimate_gpu_costs(10_000, 4, 0)
    large = estimate_gpu_costs(20_000, 4, 0)
    assert large.transfer_seconds == pytest.approx(2 * small.transfer_seconds)


def test_fits_flag():
    fits = estimate_gpu_costs(1_000_000, 8, pre_storage_bytes=10**9)
    assert fits.fits_on_gtx1080ti
    too_big = estimate_gpu_costs(
        1_000_000, 8, pre_storage_bytes=GTX_1080TI_GLOBAL_MEMORY_BYTES
    )
    assert not too_big.fits_on_gtx1080ti


def test_validation():
    with pytest.raises(ValueError):
        estimate_gpu_costs(0, 1, 0)
    with pytest.raises(ValueError):
        estimate_gpu_costs(1, 0, 0)
    with pytest.raises(ValueError):
        estimate_gpu_costs(1, 1, 0, pcie_bandwidth=0)


def test_estimate_for_graph(tiny_graph):
    estimate = estimate_for_graph(tiny_graph, n_keywords=6)
    assert estimate.matrix_bytes == tiny_graph.n_nodes * 6
    assert estimate.pre_storage_bytes > tiny_graph.storage_nbytes()
    assert estimate.fits_on_gtx1080ti
