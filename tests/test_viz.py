"""DOT export and answer explanations."""

import pytest

from repro.baselines.common import AnswerTree
from repro.core.central_graph import CentralGraph
from repro.graph.builder import GraphBuilder
from repro.viz import (
    answer_tree_to_dot,
    central_graph_to_dot,
    edge_predicates,
    explain_answer,
)


@pytest.fixture()
def labeled_graph():
    builder = GraphBuilder()
    for text in ("SQL standard", "Query language", "SPARQL for RDF"):
        builder.add_node(text)
    builder.add_edge(0, 1, "instance of")
    builder.add_edge(2, 1, "instance of")
    builder.add_edge(1, 2, "describes")
    return builder.build()


@pytest.fixture()
def answer():
    return CentralGraph(
        central_node=1,
        depth=1,
        nodes={0, 1, 2},
        edges={(0, 1), (2, 1)},
        keyword_contributions={0: frozenset({0}), 2: frozenset({1})},
    )


def test_edge_predicates_both_directions(labeled_graph):
    assert edge_predicates(labeled_graph, 0, 1) == ["instance of"]
    assert edge_predicates(labeled_graph, 1, 0) == ["^instance of"]
    # Parallel edges in both directions are all reported.
    both = edge_predicates(labeled_graph, 2, 1)
    assert "instance of" in both
    assert "^describes" in both


def test_central_graph_dot_structure(labeled_graph, answer):
    dot = central_graph_to_dot(answer, labeled_graph, keywords=["sql", "rdf"])
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    assert "peripheries=2" in dot            # central node highlighted
    assert "n0 -> n1" in dot and "n2 -> n1" in dot
    assert "instance of" in dot
    assert "[sql]" in dot and "[rdf]" in dot  # carried keywords annotated


def test_central_graph_dot_escapes_quotes():
    builder = GraphBuilder()
    builder.add_node('node with "quotes"')
    builder.add_node("plain")
    builder.add_edge(0, 1, "p")
    graph = builder.build()
    answer = CentralGraph(1, 1, {0, 1}, {(0, 1)}, {0: frozenset({0})})
    dot = central_graph_to_dot(answer, graph)
    assert '\\"quotes\\"' in dot


def test_central_graph_dot_truncates_long_text():
    builder = GraphBuilder()
    builder.add_node("x" * 100)
    builder.add_node("y")
    builder.add_edge(0, 1, "p")
    graph = builder.build()
    answer = CentralGraph(1, 1, {0, 1}, {(0, 1)}, {})
    dot = central_graph_to_dot(answer, graph)
    assert "x" * 100 not in dot
    assert "…" in dot


def test_answer_tree_dot(labeled_graph):
    tree = AnswerTree(root=1, paths={0: [1, 0], 1: [1, 2]}, score=2.0)
    dot = answer_tree_to_dot(tree, labeled_graph)
    assert "digraph" in dot
    assert "n1 -> n0" in dot
    assert "n1 -> n2" in dot


def test_explain_answer_mentions_everything(labeled_graph, answer):
    text = explain_answer(answer, labeled_graph, keywords=["sql", "rdf"])
    assert "Central Node: v1" in text
    assert "'Query language'" in text
    assert "carries [sql]" in text
    assert "carries [rdf]" in text
    assert "--instance of--> v1" in text


def test_explain_without_keyword_names(labeled_graph, answer):
    text = explain_answer(answer, labeled_graph)
    assert "carries [t0]" in text
