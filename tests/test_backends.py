"""Every expansion backend must produce bit-identical search state.

Theorem V.2's lock-free claim rests on idempotent writes: regardless of
scheduling, M and FIdentifier converge to the same values. We check the
sequential reference against the vectorized and threaded backends, and
against the independent naive simulator from conftest.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bottom_up import BottomUpSearch
from repro.core.activation import activation_levels
from repro.core.weights import node_weights
from repro.graph.generators import random_graph
from repro.parallel import SequentialBackend, ThreadPoolBackend, VectorizedBackend

from conftest import reference_hitting_levels, state_hitting_levels


def _random_problem(data):
    seed = data.draw(st.integers(0, 10_000))
    n = data.draw(st.integers(3, 40))
    m = data.draw(st.integers(n, 4 * n))
    graph = random_graph(n, m, seed=seed)
    q = data.draw(st.integers(1, 4))
    rng = np.random.default_rng(seed + 1)
    sets = []
    for _ in range(q):
        size = int(rng.integers(1, max(2, n // 4)))
        sets.append(np.unique(rng.integers(0, n, size=size)))
    use_weights = data.draw(st.booleans())
    if use_weights:
        alpha = data.draw(st.sampled_from([0.05, 0.1, 0.4]))
        activation = activation_levels(node_weights(graph), 3.0, alpha)
    else:
        activation = np.zeros(n, dtype=np.int32)
    k = data.draw(st.integers(1, 10))
    return graph, sets, activation, k


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_all_backends_agree_with_reference(data):
    graph, sets, activation, k = _random_problem(data)
    results = {}
    for backend in (
        SequentialBackend(),
        VectorizedBackend(),
        ThreadPoolBackend(n_threads=3),
    ):
        with backend:
            result = BottomUpSearch(graph, backend=backend).run(
                sets, activation, k
            )
        results[backend.name] = result

    reference_hit, reference_centrals = reference_hitting_levels(
        graph, [list(map(int, s)) for s in sets], activation, k
    )
    for name, result in results.items():
        assert state_hitting_levels(result.state) == reference_hit, name
        assert sorted(result.central_nodes) == sorted(reference_centrals), name
        assert result.depth == results["sequential"].depth


def test_threadpool_validates_arguments():
    with pytest.raises(ValueError):
        ThreadPoolBackend(n_threads=0)
    with pytest.raises(ValueError):
        ThreadPoolBackend(n_threads=2, chunks_per_thread=0)


def test_threadpool_single_thread_falls_back(chain5):
    backend = ThreadPoolBackend(n_threads=1)
    with backend:
        result = BottomUpSearch(chain5, backend=backend).run(
            [np.array([0]), np.array([4])],
            np.zeros(5, dtype=np.int32),
            k=1,
        )
    assert (2, 2) in result.central_nodes


def test_vectorized_on_empty_frontier(chain5):
    """A drained frontier must be a no-op, not an indexing error."""
    from repro.core.state import SearchState

    backend = VectorizedBackend()
    state = SearchState.initialize(
        5, [np.array([0])], np.zeros(5, dtype=np.int32)
    )
    # No enqueue performed: frontier is empty.
    backend.expand(chain5, state, 0)
    assert state.f_identifier[0] == 1  # untouched init flag


def test_backend_context_manager_closes():
    backend = ThreadPoolBackend(n_threads=2)
    with backend as b:
        assert b is backend
    # After close the pool rejects new work.
    with pytest.raises(RuntimeError):
        backend._pool.submit(lambda: None)
