"""The WikiSearch-style HTTP service."""

import json
import threading
import urllib.request

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.parallel import VectorizedBackend
from repro.service import SearchService, create_server


@pytest.fixture(scope="module")
def engine(request):
    graph, _ = request.getfixturevalue("tiny_kb")
    return KeywordSearchEngine(graph, backend=VectorizedBackend())


@pytest.fixture(scope="module")
def service(engine):
    return SearchService(engine)


# ---------------------------------------------------------------------------
# Pure request logic
# ---------------------------------------------------------------------------
def test_index_page_mentions_graph_size(service):
    page = service.index_page()
    assert "WikiSearch" in page
    assert str(service.graph.n_nodes) in page


def test_handle_search_success(service):
    status, payload = service.handle_search("machine learning", k=3)
    assert status == 200
    assert payload["keywords"] == ["machin", "learn"]
    assert payload["answers"]
    answer = payload["answers"][0]
    assert {"central_node", "central_text", "depth", "score", "nodes",
            "edges"} <= set(answer)
    # Node payloads annotate carried keywords.
    carried = [n for n in answer["nodes"] if n["keywords"]]
    assert carried


def test_handle_search_validations(service):
    assert service.handle_search("")[0] == 400
    assert service.handle_search("x", k=0)[0] == 400
    assert service.handle_search("x", alpha=1.5)[0] == 400


def test_handle_search_unmatched_is_404(service):
    status, payload = service.handle_search("zzzzqqq")
    assert status == 404
    assert "error" in payload


def test_handle_path_routing(service):
    status, content_type, body = service.handle_path("/")
    assert status == 200 and content_type.startswith("text/html")
    status, _, body = service.handle_path("/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "ok"
    status, _, _ = service.handle_path("/nope")
    assert status == 404
    status, _, body = service.handle_path("/search?q=machine+learning&k=2")
    assert status == 200
    assert len(json.loads(body)["answers"]) <= 2
    status, _, _ = service.handle_path("/search?q=x&k=notanumber")
    assert status == 400


def test_stats_counters(engine):
    service = SearchService(engine)
    service.handle_search("machine learning")
    service.handle_search("zzzz")
    assert service.stats.queries == 2
    assert service.stats.errors == 1


def test_metrics_endpoint_prometheus_format(engine):
    from repro.obs import MetricsRegistry

    service = SearchService(engine, registry=MetricsRegistry())
    service.handle_path("/search?q=machine+learning&k=2")
    service.handle_path("/healthz")
    status, content_type, body = service.handle_path("/metrics")
    assert status == 200
    assert content_type == "text/plain; version=0.0.4; charset=utf-8"
    assert "# TYPE repro_http_requests_total counter" in body
    assert 'repro_http_requests_total{endpoint="/search"} 1' in body
    assert 'repro_http_requests_total{endpoint="/healthz"} 1' in body
    assert "# TYPE repro_http_request_seconds histogram" in body
    assert 'repro_http_request_seconds_bucket{endpoint="/search",le="+Inf"} 1' in body
    assert 'repro_http_request_seconds_count{endpoint="/search"} 1' in body


def test_statz_endpoint_per_endpoint_counts_and_last_error(engine):
    import json as json_module

    from repro.obs import MetricsRegistry

    service = SearchService(engine, registry=MetricsRegistry())
    service.handle_path("/search?q=machine+learning&k=2")
    service.handle_path("/search?q=zzzzqqq")
    service.handle_path("/bogus")
    status, content_type, body = service.handle_path("/statz")
    assert status == 200
    assert content_type == "application/json"
    payload = json_module.loads(body)
    stats = payload["service"]
    assert stats["requests_by_endpoint"]["/search"] == 2
    assert stats["requests_by_endpoint"]["other"] == 1
    assert stats["errors_by_endpoint"]["/search"] == 1
    assert stats["errors_by_endpoint"]["other"] == 1
    assert stats["last_error"]["endpoint"] == "other"
    assert stats["last_error"]["status"] == 404
    assert stats["queries"] == 2 and stats["errors"] == 1
    assert stats["uptime_seconds"] >= 0
    assert "repro_http_requests_total" in payload["metrics"]


def test_error_metrics_recorded(engine):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    service = SearchService(engine, registry=registry)
    service.handle_path("/search?q=zzzzqqq")
    text = registry.render_prometheus()
    assert 'repro_http_errors_total{endpoint="/search"} 1' in text


# ---------------------------------------------------------------------------
# Real HTTP round-trip (ephemeral port)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(engine):
    server = create_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()


def _get(server, path):
    port = server.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, response.read().decode("utf-8")


def test_http_health(server):
    status, body = _get(server, "/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "ok"


def test_http_search_roundtrip(server):
    status, body = _get(server, "/search?q=machine+learning&k=2&pretty=1")
    assert status == 200
    payload = json.loads(body)
    assert payload["query"] == "machine learning"
    assert payload["answers"]


def test_http_index_page(server):
    status, body = _get(server, "/")
    assert status == 200
    assert "<form" in body


def test_http_error_status(server):
    import urllib.error

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/search?q=zzzzqqq")
    assert excinfo.value.code == 404


def test_http_metrics_and_statz(server):
    status, body = _get(server, "/metrics")
    assert status == 200
    assert "repro_http_requests_total" in body
    status, body = _get(server, "/statz")
    assert status == 200
    assert "requests_by_endpoint" in json.loads(body)["service"]
