"""The WikiSearch-style HTTP service."""

import json
import threading
import urllib.request

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.parallel import VectorizedBackend
from repro.service import SearchService, create_server


@pytest.fixture(scope="module")
def engine(request):
    graph, _ = request.getfixturevalue("tiny_kb")
    return KeywordSearchEngine(graph, backend=VectorizedBackend())


@pytest.fixture(scope="module")
def service(engine):
    return SearchService(engine)


# ---------------------------------------------------------------------------
# Pure request logic
# ---------------------------------------------------------------------------
def test_index_page_mentions_graph_size(service):
    page = service.index_page()
    assert "WikiSearch" in page
    assert str(service.graph.n_nodes) in page


def test_handle_search_success(service):
    status, payload = service.handle_search("machine learning", k=3)
    assert status == 200
    assert payload["keywords"] == ["machin", "learn"]
    assert payload["answers"]
    answer = payload["answers"][0]
    assert {"central_node", "central_text", "depth", "score", "nodes",
            "edges"} <= set(answer)
    # Node payloads annotate carried keywords.
    carried = [n for n in answer["nodes"] if n["keywords"]]
    assert carried


def test_handle_search_validations(service):
    assert service.handle_search("")[0] == 400
    assert service.handle_search("x", k=0)[0] == 400
    assert service.handle_search("x", alpha=1.5)[0] == 400


def test_handle_search_unmatched_is_404(service):
    status, payload = service.handle_search("zzzzqqq")
    assert status == 404
    assert "error" in payload


def test_handle_path_routing(service):
    status, content_type, body = service.handle_path("/")
    assert status == 200 and content_type.startswith("text/html")
    status, _, body = service.handle_path("/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "ok"
    status, _, _ = service.handle_path("/nope")
    assert status == 404
    status, _, body = service.handle_path("/search?q=machine+learning&k=2")
    assert status == 200
    assert len(json.loads(body)["answers"]) <= 2
    status, _, _ = service.handle_path("/search?q=x&k=notanumber")
    assert status == 400


def test_stats_counters(engine):
    service = SearchService(engine)
    service.handle_search("machine learning")
    service.handle_search("zzzz")
    assert service.stats.queries == 2
    assert service.stats.errors == 1


def test_metrics_endpoint_prometheus_format(engine):
    from repro.obs import MetricsRegistry

    service = SearchService(engine, registry=MetricsRegistry())
    service.handle_path("/search?q=machine+learning&k=2")
    service.handle_path("/healthz")
    status, content_type, body = service.handle_path("/metrics")
    assert status == 200
    assert content_type == "text/plain; version=0.0.4; charset=utf-8"
    assert "# TYPE repro_http_requests_total counter" in body
    assert 'repro_http_requests_total{endpoint="/search"} 1' in body
    assert 'repro_http_requests_total{endpoint="/healthz"} 1' in body
    assert "# TYPE repro_http_request_seconds histogram" in body
    assert 'repro_http_request_seconds_bucket{endpoint="/search",le="+Inf"} 1' in body
    assert 'repro_http_request_seconds_count{endpoint="/search"} 1' in body


def test_statz_endpoint_per_endpoint_counts_and_last_error(engine):
    import json as json_module

    from repro.obs import MetricsRegistry

    service = SearchService(engine, registry=MetricsRegistry())
    service.handle_path("/search?q=machine+learning&k=2")
    service.handle_path("/search?q=zzzzqqq")
    service.handle_path("/bogus")
    status, content_type, body = service.handle_path("/statz")
    assert status == 200
    assert content_type == "application/json"
    payload = json_module.loads(body)
    stats = payload["service"]
    assert stats["requests_by_endpoint"]["/search"] == 2
    assert stats["requests_by_endpoint"]["other"] == 1
    assert stats["errors_by_endpoint"]["/search"] == 1
    assert stats["errors_by_endpoint"]["other"] == 1
    assert stats["last_error"]["endpoint"] == "other"
    assert stats["last_error"]["status"] == 404
    assert stats["queries"] == 2 and stats["errors"] == 1
    assert stats["uptime_seconds"] >= 0
    assert "repro_http_requests_total" in payload["metrics"]


def test_error_metrics_recorded(engine):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    service = SearchService(engine, registry=registry)
    service.handle_path("/search?q=zzzzqqq")
    text = registry.render_prometheus()
    assert 'repro_http_errors_total{endpoint="/search"} 1' in text


# ---------------------------------------------------------------------------
# Flight recorder endpoints
# ---------------------------------------------------------------------------
def _debug_service(engine, max_records=8):
    from repro.obs import FlightRecorder, MetricsRegistry

    return SearchService(
        engine,
        registry=MetricsRegistry(),
        flight=FlightRecorder(max_records=max_records, slow_ms=0),
    )


def test_debug_queries_listing_and_detail(engine):
    service = _debug_service(engine)
    status, _, body = service.handle_path("/search?q=machine+learning&k=2")
    assert status == 200
    query_id = json.loads(body)["query_id"]
    assert query_id is not None

    status, content_type, body = service.handle_path("/debug/queries")
    assert status == 200 and content_type == "application/json"
    listing = json.loads(body)
    assert listing["completed"] == 1
    assert listing["recent"][0]["query_id"] == query_id
    assert listing["recent"][0]["outcome"] == "ok"

    status, _, body = service.handle_path(f"/debug/queries/{query_id}")
    assert status == 200
    detail = json.loads(body)
    assert detail["query"] == "machine learning"
    assert detail["phases"]["total"] > 0
    assert detail["spans"], "record carries a span tree"
    assert detail["trace"]["traceEvents"]

    status, _, _ = service.handle_path("/debug/queries/notanumber")
    assert status == 400
    status, _, _ = service.handle_path("/debug/queries/999999")
    assert status == 404


def test_last_error_links_to_flight_record(engine):
    service = _debug_service(engine)
    status, _, body = service.handle_path("/search?q=zzzzqqq")
    assert status == 404
    error_payload = json.loads(body)
    assert error_payload["query_id"] is not None
    assert error_payload["phase"] == "initialization"

    last_error = service.stats.last_error
    assert last_error["query_id"] == error_payload["query_id"]
    assert last_error["phase"] == "initialization"
    # The linked record is servable.
    status, _, body = service.handle_path(
        f"/debug/queries/{last_error['query_id']}"
    )
    assert status == 200
    assert json.loads(body)["outcome"] == "error"


def test_services_on_one_engine_share_the_recorder(engine):
    first = _debug_service(engine)
    second = SearchService(engine)  # adopts engine.flight
    assert second.flight is first.flight


def test_debug_endpoints_under_concurrency(engine):
    """Hammer /metrics, /statz and /debug/queries while /search runs:
    exact request counts, no ring corruption."""
    from concurrent.futures import ThreadPoolExecutor

    service = _debug_service(engine, max_records=4)
    n_search, n_read = 24, 30
    paths = ["/search?q=machine+learning&k=1"] * n_search + [
        "/metrics",
        "/statz",
        "/debug/queries",
    ] * (n_read // 3)
    with ThreadPoolExecutor(max_workers=8) as executor:
        statuses = list(
            executor.map(lambda p: service.handle_path(p)[0], paths)
        )
    assert statuses.count(200) == len(paths)
    assert service.stats.requests_by_endpoint["/search"] == n_search
    assert service.stats.requests_by_endpoint["/metrics"] == n_read // 3
    assert service.stats.requests_by_endpoint["/statz"] == n_read // 3
    assert service.stats.requests_by_endpoint["/debug/queries"] == n_read // 3
    # Every search was recorded exactly once; the ring stayed bounded.
    assert service.flight.completed == n_search
    listing = service.flight.debug_payload()
    assert len(listing["recent"]) == 4
    ids = [row["query_id"] for row in listing["recent"]]
    assert len(set(ids)) == len(ids)


# ---------------------------------------------------------------------------
# Real HTTP round-trip (ephemeral port)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(engine):
    server = create_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()


def _get(server, path):
    port = server.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, response.read().decode("utf-8")


def test_http_health(server):
    status, body = _get(server, "/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "ok"


def test_http_search_roundtrip(server):
    status, body = _get(server, "/search?q=machine+learning&k=2&pretty=1")
    assert status == 200
    payload = json.loads(body)
    assert payload["query"] == "machine learning"
    assert payload["answers"]


def test_http_index_page(server):
    status, body = _get(server, "/")
    assert status == 200
    assert "<form" in body


def test_http_error_status(server):
    import urllib.error

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/search?q=zzzzqqq")
    assert excinfo.value.code == 404


def test_http_metrics_and_statz(server):
    status, body = _get(server, "/metrics")
    assert status == 200
    assert "repro_http_requests_total" in body
    status, body = _get(server, "/statz")
    assert status == 200
    assert "requests_by_endpoint" in json.loads(body)["service"]


def test_http_debug_queries_roundtrip(server):
    _get(server, "/search?q=machine+learning&k=1")
    status, body = _get(server, "/debug/queries")
    assert status == 200
    listing = json.loads(body)
    assert listing["completed"] >= 1
    query_id = listing["recent"][0]["query_id"]
    status, body = _get(server, f"/debug/queries/{query_id}")
    assert status == 200
    assert json.loads(body)["query_id"] == query_id
