"""Batch query executor."""

import pytest

from repro.core.batch import BatchSearcher
from repro.core.engine import KeywordSearchEngine
from repro.parallel import VectorizedBackend


@pytest.fixture(scope="module")
def engine(request):
    graph, _ = request.getfixturevalue("tiny_kb")
    return KeywordSearchEngine(graph, backend=VectorizedBackend())


def test_batch_preserves_order_and_length(engine):
    queries = ["machine learning", "knowledge graph", "machine learning"]
    report = BatchSearcher(engine).run(queries, k=3)
    assert len(report.results) == 3
    assert report.unique_queries == 2
    assert report.n_answered == 3


def test_duplicate_queries_share_one_result_object(engine):
    queries = ["machine learning", "machine learning"]
    report = BatchSearcher(engine).run(queries, k=2)
    assert report.results[0] is report.results[1]


def test_failures_recorded_not_raised(engine):
    report = BatchSearcher(engine).run(
        ["machine learning", "zzzz qqqq"], k=2
    )
    assert report.results[1] is None
    assert "zzzz qqqq" in report.failures
    assert report.n_answered == 1


def test_parallel_matches_serial(engine):
    queries = ["machine learning", "knowledge graph", "data mining",
               "gradient descent"]
    serial = BatchSearcher(engine, n_workers=1).run(queries, k=5)
    parallel = BatchSearcher(engine, n_workers=4).run(queries, k=5)
    for a, b in zip(serial.results, parallel.results):
        assert [x.graph.central_node for x in a.answers] == [
            x.graph.central_node for x in b.answers
        ]


def test_report_timing_helpers(engine):
    report = BatchSearcher(engine).run(["machine learning"], k=2)
    assert report.total_milliseconds() > 0
    assert report.mean_milliseconds() == report.total_milliseconds()
    empty = BatchSearcher(engine).run(["zzzz"], k=2)
    assert empty.mean_milliseconds() == 0.0


def test_invalid_worker_count(engine):
    with pytest.raises(ValueError):
        BatchSearcher(engine, n_workers=0)
