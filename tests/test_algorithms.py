"""Reference graph algorithms and the vectorized BFS equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.algorithms import (
    UNREACHED,
    bfs_levels,
    bfs_levels_vectorized,
    bfs_parents,
    connected_components,
    dijkstra,
    eccentricity,
    largest_component_nodes,
    pairwise_distance_matrix,
    shortest_path,
)
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, grid_graph, random_graph, star_graph


def test_bfs_levels_on_chain(chain5):
    levels = bfs_levels(chain5, [0])
    assert list(levels) == [0, 1, 2, 3, 4]


def test_bfs_levels_multi_source(chain5):
    levels = bfs_levels(chain5, [0, 4])
    assert list(levels) == [0, 1, 2, 1, 0]


def test_bfs_levels_unreached():
    builder = GraphBuilder()
    for i in range(3):
        builder.add_node(str(i))
    builder.add_edge(0, 1, "p")
    graph = builder.build()
    levels = bfs_levels(graph, [0])
    assert levels[2] == UNREACHED


def test_bfs_parents_consistency(chain5):
    levels, parents = bfs_parents(chain5, [2])
    for node in range(5):
        if node == 2:
            assert parents[node] == 2
        else:
            assert levels[parents[node]] == levels[node] - 1


def test_shortest_path_on_grid():
    grid = grid_graph(3, 3)
    path = shortest_path(grid, 0, 8)
    assert path is not None
    assert path[0] == 0 and path[-1] == 8
    assert len(path) == 5  # 4 hops across a 3x3 grid


def test_shortest_path_disconnected():
    builder = GraphBuilder()
    builder.add_node("a")
    builder.add_node("b")
    graph = builder.build()
    assert shortest_path(graph, 0, 1) is None


def test_connected_components():
    builder = GraphBuilder()
    for i in range(5):
        builder.add_node(str(i))
    builder.add_edge(0, 1, "p")
    builder.add_edge(3, 4, "p")
    graph = builder.build()
    components = connected_components(graph)
    assert components[0] == components[1]
    assert components[3] == components[4]
    assert components[0] != components[2] != components[3]


def test_largest_component(star6):
    assert len(largest_component_nodes(star6)) == 7


def test_dijkstra_uniform_equals_bfs(random20):
    dist, _ = dijkstra(random20, [0])
    levels = bfs_levels(random20, [0])
    for node in range(random20.n_nodes):
        if levels[node] == UNREACHED:
            assert np.isinf(dist[node])
        else:
            assert dist[node] == levels[node]


def test_dijkstra_respects_edge_weights():
    chain = chain_graph(3)
    weights = {(0, 1): 10.0, (1, 0): 10.0}
    dist, _ = dijkstra(chain, [0], edge_weight=weights)
    assert dist[1] == 10.0
    assert dist[2] == 11.0


def test_eccentricity(chain5):
    assert eccentricity(chain5, 0) == 4
    assert eccentricity(chain5, 2) == 2


def test_pairwise_distance_matrix(chain5):
    matrix = pairwise_distance_matrix(chain5)
    assert matrix[0, 4] == 4
    assert matrix[1, 3] == 2
    assert (np.diag(matrix) == 0).all()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 30),
    m=st.integers(0, 80),
    n_sources=st.integers(1, 3),
)
def test_vectorized_bfs_matches_reference(seed, n, m, n_sources):
    graph = random_graph(n, m, seed=seed)
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, n, size=n_sources).tolist()
    reference = bfs_levels(graph, sources)
    vectorized = bfs_levels_vectorized(graph, sources)
    assert np.array_equal(reference, vectorized)


def test_vectorized_bfs_empty_sources(chain5):
    levels = bfs_levels_vectorized(chain5, [])
    assert (levels == UNREACHED).all()
