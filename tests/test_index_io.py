"""Inverted index persistence."""

import numpy as np
import pytest

from repro.graph.generators import random_graph
from repro.text.index_io import load_index, save_index
from repro.text.inverted_index import InvertedIndex
from repro.text.tokenizer import Tokenizer, TokenizerConfig


def test_roundtrip_preserves_postings(tmp_path, tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    path = str(tmp_path / "index.npz")
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.n_terms == index.n_terms
    assert loaded.n_nodes == index.n_nodes
    for term in list(index.terms)[:50]:
        assert np.array_equal(
            loaded.nodes_for_normalized_term(term),
            index.nodes_for_normalized_term(term),
        )


def test_roundtrip_preserves_tokenizer_config(tmp_path):
    graph = random_graph(8, 12, seed=0)
    tokenizer = Tokenizer(TokenizerConfig(stem=False, min_length=3))
    index = InvertedIndex.from_graph(graph, tokenizer)
    path = str(tmp_path / "index.npz")
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.tokenizer.config == tokenizer.config


def test_roundtrip_without_extension(tmp_path, tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    path = str(tmp_path / "index")
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.n_terms == index.n_terms


def test_empty_index_roundtrip(tmp_path):
    index = InvertedIndex()
    index.build([])
    path = str(tmp_path / "empty.npz")
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.n_terms == 0
    assert loaded.n_nodes == 0


def test_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_index(str(tmp_path / "missing.npz"))


def test_bad_version_rejected(tmp_path, tiny_graph):
    import json

    index = InvertedIndex.from_graph(tiny_graph)
    path = str(tmp_path / "index.npz")
    save_index(index, path)
    meta_path = str(tmp_path / "index.meta.json")
    with open(meta_path) as handle:
        meta = json.load(handle)
    meta["version"] = 42
    with open(meta_path, "w") as handle:
        json.dump(meta, handle)
    with pytest.raises(ValueError):
        load_index(path)


def test_from_parts_validates_alignment():
    with pytest.raises(ValueError):
        InvertedIndex.from_parts(
            Tokenizer(), ["a", "b"], [np.array([0])], n_nodes=2
        )


def test_loaded_index_answers_queries(tmp_path, tiny_kb):
    from repro import KeywordSearchEngine

    graph, _ = tiny_kb
    index = InvertedIndex.from_graph(graph)
    path = str(tmp_path / "kb.index.npz")
    save_index(index, path)
    loaded = load_index(path)
    a = KeywordSearchEngine(graph, index=index, average_distance=3.0)
    b = KeywordSearchEngine(graph, index=loaded, average_distance=3.0)
    ra = a.search("machine learning", k=3)
    rb = b.search("machine learning", k=3)
    assert [x.graph.central_node for x in ra.answers] == [
        x.graph.central_node for x in rb.answers
    ]
