"""Tokenizer, stopwords, and the Porter stemmer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.stemmer import porter_stem
from repro.text.stopwords import ENGLISH_STOPWORDS, is_stopword
from repro.text.tokenizer import Tokenizer, TokenizerConfig


# ---------------------------------------------------------------------------
# Stemmer: the classic Porter test vectors
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "word, stem",
    [
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("ties", "ti"),
        ("caress", "caress"),
        ("cats", "cat"),
        ("feed", "feed"),
        ("agreed", "agre"),  # step1b gives "agree"; step5a then drops the e
        ("plastered", "plaster"),
        ("bled", "bled"),
        ("motoring", "motor"),
        ("sing", "sing"),
        ("conflated", "conflat"),
        ("troubled", "troubl"),
        ("sized", "size"),
        ("hopping", "hop"),
        ("tanned", "tan"),
        ("falling", "fall"),
        ("hissing", "hiss"),
        ("fizzed", "fizz"),
        ("failing", "fail"),
        ("filing", "file"),
        ("happy", "happi"),
        ("sky", "sky"),
        ("relational", "relat"),
        ("conditional", "condit"),
        ("rational", "ration"),
        ("valency", "valenc"),
        ("hesitancy", "hesit"),
        ("digitizer", "digit"),
        ("conformably", "conform"),
        ("radically", "radic"),
        ("differently", "differ"),
        ("vileness", "vile"),
        ("analogously", "analog"),
        ("vietnamization", "vietnam"),
        ("predication", "predic"),
        ("operator", "oper"),
        ("feudalism", "feudal"),
        ("decisiveness", "decis"),
        ("hopefulness", "hope"),
        ("callousness", "callous"),
        ("formality", "formal"),
        ("sensitivity", "sensit"),
        ("sensibility", "sensibl"),
        ("triplicate", "triplic"),
        ("formative", "form"),
        ("formalize", "formal"),
        ("electricity", "electr"),
        ("electrical", "electr"),  # step3 "electric"; step4 strips "ic" (m>1)
        ("hopeful", "hope"),
        ("goodness", "good"),
        ("revival", "reviv"),
        ("allowance", "allow"),
        ("inference", "infer"),
        ("airliner", "airlin"),
        ("gyroscopic", "gyroscop"),
        ("adjustable", "adjust"),
        ("defensible", "defens"),
        ("irritant", "irrit"),
        ("replacement", "replac"),
        ("adjustment", "adjust"),
        ("dependent", "depend"),
        ("adoption", "adopt"),
        ("homologou", "homolog"),
        ("communism", "commun"),
        ("activate", "activ"),
        ("angulariti", "angular"),
        ("homologous", "homolog"),
        ("effective", "effect"),
        ("bowdlerize", "bowdler"),
        ("probate", "probat"),
        ("rate", "rate"),
        ("cease", "ceas"),
        ("controll", "control"),
        ("roll", "roll"),
        ("learning", "learn"),
        ("indexing", "index"),
        ("databases", "databas"),
        ("searched", "search"),
    ],
)
def test_porter_vectors(word, stem):
    assert porter_stem(word) == stem


def test_short_words_unchanged():
    assert porter_stem("a") == "a"
    assert porter_stem("is") == "is"
    assert porter_stem("sky"[:2]) == "sk"


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
def test_stemmer_always_returns_nonempty_prefix_compatible(word):
    stem = porter_stem(word)
    assert stem
    assert len(stem) <= len(word) + 1  # step 1b can append an 'e'


# ---------------------------------------------------------------------------
# Stopwords
# ---------------------------------------------------------------------------
def test_common_stopwords_present():
    for word in ("the", "and", "of", "is", "with"):
        assert is_stopword(word)


def test_content_words_not_stopwords():
    for word in ("database", "graph", "keyword", "xml"):
        assert not is_stopword(word)


def test_stopword_list_is_lowercase():
    assert all(word == word.lower() for word in ENGLISH_STOPWORDS)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------
def test_tokenize_lowercases_splits_stems():
    tokens = Tokenizer().tokenize("Efficient Indexing of Relational Databases")
    assert tokens == ["effici", "index", "relat", "databas"]


def test_tokenize_drops_numbers_by_default():
    assert Tokenizer().tokenize("SPARQL 1.1 released 2013") == ["sparql", "releas"]


def test_tokenize_keeps_numbers_when_configured():
    tokenizer = Tokenizer(TokenizerConfig(keep_numbers=True, min_length=1))
    assert "2013" in tokenizer.tokenize("released 2013")


def test_tokenize_without_stemming():
    tokenizer = Tokenizer(TokenizerConfig(stem=False))
    assert tokenizer.tokenize("relational databases") == [
        "relational",
        "databases",
    ]


def test_tokenize_without_stopword_removal():
    tokenizer = Tokenizer(TokenizerConfig(remove_stopwords=False, stem=False))
    assert "the" in tokenizer.tokenize("the graph")


def test_unique_terms_preserves_first_seen_order():
    tokenizer = Tokenizer()
    assert tokenizer.unique_terms("graph graphs GRAPH keyword") == [
        "graph",
        "keyword",
    ]


def test_min_length_filter():
    tokenizer = Tokenizer(TokenizerConfig(min_length=6, stem=False))
    assert tokenizer.tokenize("big knowledge") == ["knowledge"]


def test_alphanumeric_tokens_survive():
    assert "neo4j" in Tokenizer().tokenize("Neo4j graph database")


@settings(max_examples=50, deadline=None)
@given(st.text(max_size=80))
def test_tokenizer_never_crashes_and_output_is_normalized(text):
    tokenizer = Tokenizer()
    for token in tokenizer.tokenize(text):
        assert token == token.lower()
        assert len(token) >= tokenizer.config.min_length
