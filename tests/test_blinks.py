"""BLINKS baseline: per-term index, query scan, feasibility accounting."""

import numpy as np
import pytest

from repro.baselines.blinks import Blinks, BlinksIndex
from repro.graph.algorithms import bfs_levels
from repro.graph.builder import GraphBuilder
from repro.graph.generators import random_graph
from repro.text.inverted_index import InvertedIndex


def _keyword_graph():
    builder = GraphBuilder()
    texts = ["apple start", "middle", "stone here", "other", "banana end"]
    for text in texts:
        builder.add_node(text)
    for i in range(4):
        builder.add_edge(i, i + 1, "next")
    return builder.build()


def test_term_entry_distances_match_bfs():
    graph = _keyword_graph()
    index = InvertedIndex.from_graph(graph)
    blinks_index = BlinksIndex(graph, index)
    entry = blinks_index.ensure_term("apple")
    expected = bfs_levels(graph, [0])
    assert np.array_equal(entry.distances, expected.astype(entry.distances.dtype))


def test_term_entry_parents_walk_to_carrier():
    graph = _keyword_graph()
    index = InvertedIndex.from_graph(graph)
    entry = BlinksIndex(graph, index).ensure_term("banana")
    node = 0
    hops = 0
    while entry.distances[node] > 0:
        node = int(entry.parents[node])
        hops += 1
    assert node == 4
    assert hops == entry.distances[0]


def test_ensure_term_caches():
    graph = _keyword_graph()
    index = InvertedIndex.from_graph(graph)
    blinks_index = BlinksIndex(graph, index)
    first = blinks_index.ensure_term("apple")
    second = blinks_index.ensure_term("apple")
    assert first is second
    assert blinks_index.n_indexed_terms == 1


def test_unknown_term_returns_none():
    graph = _keyword_graph()
    index = InvertedIndex.from_graph(graph)
    assert BlinksIndex(graph, index).ensure_term("zzz") is None


def test_search_finds_optimal_root():
    graph = _keyword_graph()
    index = InvertedIndex.from_graph(graph)
    result = Blinks(graph, index).search("apple banana", k=3)
    assert result.answers
    best = result.answers[0]
    # Any root on the chain scores 4 (path sums); the tree must span it.
    assert best.score == 4.0
    assert {0, 4} <= best.nodes


def test_search_rejects_unmatched_query():
    graph = _keyword_graph()
    index = InvertedIndex.from_graph(graph)
    with pytest.raises(ValueError):
        Blinks(graph, index).search("qqq www")


def test_search_handles_disconnected_keywords():
    builder = GraphBuilder()
    builder.add_node("apple")
    builder.add_node("banana")
    builder.add_node("bridgeless")
    builder.add_edge(0, 2, "p")
    graph = builder.build()
    index = InvertedIndex.from_graph(graph)
    result = Blinks(graph, index).search("apple banana", k=2)
    assert result.answers == []


def test_blinks_agrees_with_banks1_scores(tiny_graph):
    """Same scoring convention: the optimal root score must match."""
    from repro.baselines.banks import BanksConfig, BanksI

    index = InvertedIndex.from_graph(tiny_graph)
    query = "machine learning"
    blinks = Blinks(tiny_graph, index).search(query, k=1)
    banks = BanksI(
        tiny_graph, index, BanksConfig(prestige_bonus=0.0)
    ).search(query, k=1)
    assert blinks.answers and banks.answers
    path_sum_blinks = sum(
        len(p) - 1 for p in blinks.answers[0].paths.values()
    )
    path_sum_banks = sum(
        len(p) - 1 for p in banks.answers[0].paths.values()
    )
    assert path_sum_blinks == path_sum_banks


def test_feasibility_accounting(tiny_graph):
    index = InvertedIndex.from_graph(tiny_graph)
    blinks_index = BlinksIndex(tiny_graph, index)
    blinks_index.ensure_term("machine")
    per_term = blinks_index.per_term_nbytes()
    assert per_term == tiny_graph.n_nodes * 12  # int32 + int64 per node
    assert blinks_index.nbytes() == per_term
    assert (
        blinks_index.extrapolated_full_nbytes()
        == index.n_terms * per_term
    )
    # The paper's argument: the full index dwarfs the graph itself.
    assert blinks_index.extrapolated_full_nbytes() > 10 * tiny_graph.storage_nbytes()
