"""The repro.obs observability layer: tracing, metrics, config, adapter."""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.instrumentation import (
    PHASE_TOTAL,
    KernelCounters,
    PhaseTimer,
    summarize_timers,
)
from repro.obs import (
    ENV_NATIVE_KERNEL,
    ENV_OBS,
    MetricsRegistry,
    ObsConfig,
    Span,
    Tracer,
    TracingPhaseTimer,
    install_global_tracer,
    obs_enabled,
    record_kernel_counters,
    uninstall_global_tracer,
    validate_chrome_trace,
)
from repro.obs.tracing import NULL_CONTEXT, NULL_SPAN, NULL_TRACER


# ---------------------------------------------------------------------------
# Tracer: spans, nesting, threads
# ---------------------------------------------------------------------------
def test_span_nesting_and_attrs():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", k=3) as outer:
        with tracer.span("inner") as inner:
            inner.set_attr("x", 1)
        assert tracer.current_span() is outer
    spans = tracer.finished_spans()
    assert [s.name for s in spans] == ["inner", "outer"]
    inner, outer = spans
    assert inner.parent_id == outer.span_id
    assert outer.parent_id == 0
    assert outer.attrs["k"] == 3
    assert inner.attrs["x"] == 1
    assert inner.duration_ns >= 0
    assert outer.duration_ns >= inner.duration_ns


def test_span_records_on_exception():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert [s.name for s in tracer.finished_spans()] == ["boom"]
    assert tracer.current_span() is None


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    ctx = tracer.span("x")
    assert ctx is NULL_CONTEXT
    with ctx as span:
        assert span is NULL_SPAN
        span.set_attr("ignored", 1)  # no-op, no error
    assert tracer.finished_spans() == []


def test_cross_thread_parenting_via_explicit_parent():
    tracer = Tracer(enabled=True)
    with tracer.span("coordinator") as parent:
        def work():
            # The worker thread's stack is empty: without parent= this
            # span would become a root.
            with tracer.span("chunk", parent=parent):
                pass

        with ThreadPoolExecutor(max_workers=2) as pool:
            list(pool.map(lambda _: work(), range(4)))
    spans = tracer.finished_spans()
    chunks = [s for s in spans if s.name == "chunk"]
    coordinator = next(s for s in spans if s.name == "coordinator")
    assert len(chunks) == 4
    assert all(c.parent_id == coordinator.span_id for c in chunks)
    assert any(c.tid != coordinator.tid for c in chunks)


def test_traced_decorator():
    tracer = Tracer(enabled=True)

    @tracer.traced("work")
    def work(x):
        return x + 1

    assert work(1) == 2
    assert [s.name for s in tracer.finished_spans()] == ["work"]


def test_chrome_trace_export_and_validation(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("query", k=5):
        with tracer.span("phase:total"):
            pass
    payload = tracer.to_chrome_trace()
    validate_chrome_trace(payload)
    events = payload["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in complete} == {"query", "phase:total"}
    assert meta and meta[0]["name"] == "thread_name"
    query = next(e for e in complete if e["name"] == "query")
    assert query["args"]["k"] == 5
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    validate_chrome_trace(json.loads(path.read_text()))


def test_validate_chrome_trace_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"no": "events"})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 1,
                 "ts": -5.0, "dur": 1.0, "args": {}},
            ]}
        )
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0.0, "dur": 1.0,
                 "args": {"span_id": 1, "parent_id": 99}},
            ]}
        )


def test_flame_summary_aggregates_siblings():
    tracer = Tracer(enabled=True)
    with tracer.span("query"):
        for level in range(3):
            with tracer.span("level", level=level):
                pass
    summary = tracer.flame_summary()
    assert "query" in summary
    # Three sibling "level" spans collapse to one row with calls=3.
    level_line = next(l for l in summary.splitlines() if "level" in l)
    assert level_line.rstrip().endswith("3")


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total", "help", tier="a")
    counter.inc()
    counter.inc(2)
    assert counter.value == 3
    with pytest.raises(ValueError):
        counter.inc(-1)
    gauge = registry.gauge("repro_test_gauge")
    gauge.set(5)
    gauge.dec(2)
    assert gauge.value == 3
    histogram = registry.histogram("repro_test_seconds")
    for value in (0.001, 0.002, 0.004, 10.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["sum"] == pytest.approx(10.007)
    assert 0 < summary["p50"] <= 0.01
    assert summary["p99"] > 1.0


def test_registry_get_or_create_and_kind_mismatch():
    registry = MetricsRegistry()
    a = registry.counter("repro_x_total", tier="t")
    b = registry.counter("repro_x_total", tier="t")
    assert a is b
    c = registry.counter("repro_x_total", tier="other")
    assert c is not a
    with pytest.raises(ValueError):
        registry.gauge("repro_x_total", tier="t")
    with pytest.raises(ValueError):
        registry.counter("bad name")
    with pytest.raises(ValueError):
        registry.counter("repro_y_total", **{"0bad": "v"})


def test_prometheus_rendering():
    registry = MetricsRegistry()
    registry.counter("repro_http_requests_total", "GETs", endpoint="/search").inc(2)
    registry.histogram("repro_http_request_seconds", endpoint="/search").observe(0.01)
    text = registry.render_prometheus()
    assert "# TYPE repro_http_requests_total counter" in text
    assert '# HELP repro_http_requests_total GETs' in text
    assert 'repro_http_requests_total{endpoint="/search"} 2' in text
    assert "# TYPE repro_http_request_seconds histogram" in text
    assert 'le="+Inf"} 1' in text
    assert 'repro_http_request_seconds_count{endpoint="/search"} 1' in text
    assert 'repro_http_request_seconds_sum{endpoint="/search"}' in text
    # Cumulative buckets: every bound >= 0.01 reports 1.
    assert 'le="0.0128"} 1' in text


def test_histogram_percentile_bounds():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_p_seconds")
    assert histogram.percentile(0.5) == 0.0
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_concurrent_counter_hammer_exact_total():
    registry = MetricsRegistry()
    counter = registry.counter("repro_hammer_total")
    histogram = registry.histogram("repro_hammer_seconds")
    n_threads, n_iter = 8, 500

    def hammer(_):
        for _ in range(n_iter):
            counter.inc()
            histogram.observe(0.001)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(hammer, range(n_threads)))
    assert counter.value == n_threads * n_iter
    assert histogram.count == n_threads * n_iter
    assert histogram.sum == pytest.approx(n_threads * n_iter * 0.001)


def test_record_kernel_counters(monkeypatch):
    registry = MetricsRegistry()
    counters = KernelCounters(
        sources_pruned=1, edges_gathered=10, pairs_hit=5,
        duplicates_elided=2, pull_levels=0,
    )
    record_kernel_counters(counters, tier="numpy", registry=registry)
    text = registry.render_prometheus()
    assert 'repro_kernel_edges_gathered_total{tier="numpy"} 10' in text
    assert 'repro_kernel_pairs_hit_total{tier="numpy"} 5' in text
    # Zero-valued fields are skipped entirely.
    assert "pull_levels" not in text
    # REPRO_OBS=0 turns recording into a no-op.
    monkeypatch.setenv(ENV_OBS, "0")
    record_kernel_counters(counters, tier="numpy", registry=registry)
    assert 'edges_gathered_total{tier="numpy"} 10' in registry.render_prometheus()


# ---------------------------------------------------------------------------
# Config / kill-switch
# ---------------------------------------------------------------------------
def test_env_switches(monkeypatch):
    monkeypatch.delenv(ENV_OBS, raising=False)
    assert obs_enabled()
    monkeypatch.setenv(ENV_OBS, "0")
    assert not obs_enabled()
    assert not Tracer().enabled  # default follows the kill-switch
    config = ObsConfig.from_env()
    assert not config.enabled
    monkeypatch.setenv(ENV_OBS, "1")
    assert Tracer().enabled


def test_native_kernel_env_name_matches_native_module():
    from repro.parallel import _native

    assert ENV_NATIVE_KERNEL == _native.ENV_FLAG


def test_maybe_install_env_tracer(monkeypatch, tmp_path):
    from repro.obs.config import maybe_install_env_tracer

    uninstall_global_tracer()
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert maybe_install_env_tracer() is None
    path = tmp_path / "bench.trace.json"
    monkeypatch.setenv("REPRO_TRACE", str(path))
    tracer = maybe_install_env_tracer()
    try:
        assert tracer is not None and tracer.enabled
        # Idempotent: the second call returns the installed tracer.
        assert maybe_install_env_tracer() is tracer
        from repro.obs.tracing import get_global_tracer

        assert get_global_tracer() is tracer
    finally:
        uninstall_global_tracer()


# ---------------------------------------------------------------------------
# PhaseTimer adapter parity
# ---------------------------------------------------------------------------
def test_tracing_phase_timer_matches_phase_timer(monkeypatch):
    """Under a fake clock both timers accumulate identical seconds."""
    ticks = {"now": 0.0}

    def fake_perf_counter():
        ticks["now"] += 0.5
        return ticks["now"]

    import repro.instrumentation as instrumentation

    monkeypatch.setattr(instrumentation.time, "perf_counter", fake_perf_counter)
    plain = PhaseTimer()
    traced = TracingPhaseTimer(Tracer(enabled=True))
    for timer in (plain, traced):
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
    assert traced.seconds == plain.seconds
    assert plain.seconds == {"a": 1.0, "b": 0.5}


def test_tracing_phase_timer_emits_spans():
    tracer = Tracer(enabled=True)
    timer = TracingPhaseTimer(tracer)
    with timer.phase(PHASE_TOTAL):
        with timer.phase("expansion"):
            pass
    names = [s.name for s in tracer.finished_spans()]
    assert names == ["phase:expansion", f"phase:{PHASE_TOTAL}"]
    assert timer.get(PHASE_TOTAL) > 0


# ---------------------------------------------------------------------------
# summarize_timers (average_timers companion)
# ---------------------------------------------------------------------------
def test_summarize_timers_reports_counts():
    a = PhaseTimer({"x": 1.0})
    b = PhaseTimer({"x": 3.0, "y": 1.0})
    summary = summarize_timers([a, b])
    assert summary["x"].mean_ms == 2000.0
    assert summary["x"].count == 2
    assert summary["y"].mean_ms == 500.0          # matches average_timers
    assert summary["y"].mean_present_ms == 1000.0  # absent != zero
    assert summary["y"].count == 1
    assert summary["y"].n_timers == 2
    assert summarize_timers([]) == {}


# ---------------------------------------------------------------------------
# Engine integration: query -> phase -> level spans
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_search(request):
    from repro.core.engine import KeywordSearchEngine
    from repro.parallel import VectorizedBackend

    graph, _ = request.getfixturevalue("tiny_kb")
    tracer = Tracer(enabled=True)
    engine = KeywordSearchEngine(
        graph, backend=VectorizedBackend(), tracer=tracer
    )
    result = engine.search("machine learning", k=3)
    return tracer, result


def test_engine_emits_nested_query_phase_level_spans(traced_search):
    tracer, result = traced_search
    spans = tracer.finished_spans()
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    query = by_name["query"][0]
    total = next(s for s in by_name["phase:total"])
    levels = by_name["level"]
    assert query.parent_id == 0
    assert total.parent_id == query.span_id
    assert all(level.parent_id == total.span_id for level in levels)
    assert query.attrs["n_answers"] == len(result.answers)
    assert query.attrs["depth"] == result.depth
    # Expanded levels carry profile + kernel-counter attributes.
    expanded = [l for l in levels if "edges_gathered" in l.attrs]
    terminal = [l for l in levels if "edges_gathered" not in l.attrs]
    for level in levels:
        assert "frontier_size" in level.attrs
    assert len(terminal) <= 1
    if result.depth > 0:
        assert expanded
        assert all(l.attrs["pairs_hit"] >= 0 for l in expanded)
    payload = tracer.to_chrome_trace()
    validate_chrome_trace(payload)


def test_engine_with_disabled_tracer_uses_plain_timer(request):
    from repro.core.engine import KeywordSearchEngine
    from repro.instrumentation import PhaseTimer as PlainTimer
    from repro.parallel import VectorizedBackend

    graph, _ = request.getfixturevalue("tiny_kb")
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    result = engine.search("machine learning", k=2)
    assert type(result.timer) is PlainTimer
    assert result.answers


def test_engine_uses_installed_global_tracer(request):
    from repro.core.engine import KeywordSearchEngine
    from repro.parallel import VectorizedBackend

    graph, _ = request.getfixturevalue("tiny_kb")
    tracer = Tracer(enabled=True)
    install_global_tracer(tracer)
    try:
        engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
        engine.search("machine learning", k=2)
    finally:
        uninstall_global_tracer()
    assert any(s.name == "query" for s in tracer.finished_spans())


def test_threaded_backend_attaches_chunk_spans(request):
    from repro.core.engine import KeywordSearchEngine
    from repro.parallel import ThreadPoolBackend

    graph, _ = request.getfixturevalue("tiny_kb")
    tracer = Tracer(enabled=True)
    with ThreadPoolBackend(n_threads=2) as backend:
        engine = KeywordSearchEngine(graph, backend=backend, tracer=tracer)
        engine.search("machine learning paper", k=5)
    spans = tracer.finished_spans()
    chunks = [s for s in spans if s.name == "chunk"]
    if chunks:  # small frontiers may take the single-chunk fast path
        expansions = {
            s.span_id for s in spans if s.name == "phase:expansion"
        }
        assert all(c.parent_id in expansions for c in chunks)
    validate_chrome_trace(tracer.to_chrome_trace())


# ---------------------------------------------------------------------------
# Kill-switch overhead
# ---------------------------------------------------------------------------
def test_disabled_obs_within_noise_of_untraced():
    from repro.bench.kernel_microbench import measure_obs_overhead

    overhead = measure_obs_overhead(repeats=3, n_queries=2, knum=3, topk=5)
    # Identical code path either way; generous factor absorbs CI noise.
    assert overhead["ratio"] < 2.0
    assert overhead["plain_ms"] > 0
    # The always-on flight recorder (per-query tracer + ring commit)
    # must stay cheap relative to the query itself.
    assert overhead["flight_ratio"] < 3.0
    assert overhead["flight_ms"] > 0
    # The witnessed lock factory (REPRO_LOCK_WITNESS=1) wraps every
    # service-shell lock; the debug tier must stay usable.
    assert overhead["witness_ratio"] < 3.0
    assert overhead["witness_ms"] > 0
