"""Command-line interface."""

import os

import pytest

from repro.cli import main
from repro.graph.generators import WikiKBConfig, wiki_like_kb
from repro.graph.io import save_graph
from repro.text.index_io import save_index
from repro.text.inverted_index import InvertedIndex


@pytest.fixture(scope="module")
def saved_kb(tmp_path_factory):
    """A small KB saved to disk the way `repro generate` does."""
    config = WikiKBConfig(
        name="cli-kb", seed=77, n_papers=120, n_people=50, n_misc=40,
        n_venues=4, n_orgs=4, gold_papers_per_query=1,
        decoy_papers_per_phrase=1,
    )
    graph, _ = wiki_like_kb(config)
    path = str(tmp_path_factory.mktemp("cli") / "kb")
    save_graph(graph, path)
    save_index(InvertedIndex.from_graph(graph), path + ".index")
    return path


def test_generate_writes_files(tmp_path, capsys):
    out = str(tmp_path / "generated")
    # Use the CLI with a seed so the default (large) preset is exercised
    # deterministically; wiki2017 scale takes ~1s.
    code = main(["generate", "--out", out, "--scale", "wiki2017",
                 "--seed", "3"])
    assert code == 0
    assert os.path.exists(out + ".npz")
    assert os.path.exists(out + ".meta.json")
    assert os.path.exists(out + ".index.npz")
    captured = capsys.readouterr()
    assert "generated wiki2017-sim" in captured.out


def test_stats_on_saved_graph(saved_kb, capsys):
    code = main(["stats", "--graph", saved_kb, "--pairs", "200"])
    assert code == 0
    out = capsys.readouterr().out
    assert "nodes:" in out
    assert "avg distance A:" in out
    assert "most frequent terms:" in out


def test_search_prints_answers(saved_kb, capsys):
    code = main(["search", "--graph", saved_kb, "machine learning",
                 "-k", "3", "--backend", "sequential"])
    assert code == 0
    out = capsys.readouterr().out
    assert "answers in" in out
    assert "--- answer 1" in out


def test_search_explain_mode(saved_kb, capsys):
    code = main(["search", "--graph", saved_kb, "machine learning",
                 "-k", "2", "--explain"])
    assert code == 0
    assert "Central Node:" in capsys.readouterr().out


def test_search_writes_dot(saved_kb, tmp_path, capsys):
    dot_path = str(tmp_path / "answer.dot")
    code = main(["search", "--graph", saved_kb, "machine learning",
                 "-k", "1", "--dot", dot_path])
    assert code == 0
    with open(dot_path) as handle:
        assert handle.read().startswith("digraph")


def test_search_unmatched_query_exit_code(saved_kb, capsys):
    code = main(["search", "--graph", saved_kb, "zzzzqqq"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_search_suggests_on_typo(saved_kb, capsys):
    code = main(["search", "--graph", saved_kb, "machne"])  # typo
    assert code == 2
    err = capsys.readouterr().err
    assert "did you mean" in err
    assert "machin" in err


def test_bench_runs(saved_kb, capsys):
    code = main(["bench", "--graph", saved_kb, "--knum", "3",
                 "--queries", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "expansion" in out
    assert "total" in out


def test_generate_from_wikidata_dump(tmp_path, capsys):
    import json

    dump = tmp_path / "dump.json"
    entities = [
        {"id": "Q1", "labels": {"en": {"value": "SQL language"}},
         "claims": {"P31": [{"mainsnak": {"snaktype": "value",
                                          "datavalue": {
                                              "type": "wikibase-entityid",
                                              "value": {"id": "Q2"}}}}]}},
        {"id": "Q2", "labels": {"en": {"value": "query language"}}},
    ]
    dump.write_text("\n".join(json.dumps(e) for e in entities))
    out = str(tmp_path / "imported")
    code = main(["generate", "--out", out, "--from-wikidata", str(dump)])
    assert code == 0
    assert "imported 2/2 entities" in capsys.readouterr().out
    code = main(["search", "--graph", out, "sql language", "-k", "1"])
    assert code == 0


def test_profile_writes_valid_chrome_trace(saved_kb, tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    trace_path = str(tmp_path / "profile.trace.json")
    code = main(["profile", "--graph", saved_kb, "machine learning",
                 "-k", "3", "--trace", trace_path, "--format", "chrome"])
    assert code == 0
    captured = capsys.readouterr()
    assert "spans" in captured.err
    # stdout carries the Chrome trace JSON itself.
    payload = json.loads(captured.out)
    validate_chrome_trace(payload)
    names = {e["name"] for e in payload["traceEvents"]}
    assert {"query", "phase:total", "level"} <= names
    with open(trace_path) as handle:
        written = json.load(handle)
    validate_chrome_trace(written)


def test_profile_summary_format(saved_kb, capsys):
    code = main(["profile", "--graph", saved_kb, "machine learning",
                 "-k", "2", "--format", "summary"])
    assert code == 0
    out = capsys.readouterr().out
    assert "query" in out
    assert "total_ms" in out


def test_profile_unmatched_query_exit_code(saved_kb, capsys):
    code = main(["profile", "--graph", saved_kb, "zzzzqqq"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_search_trace_flag(saved_kb, tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    trace_path = str(tmp_path / "search.trace.json")
    code = main(["search", "--graph", saved_kb, "machine learning",
                 "-k", "2", "--trace", trace_path])
    assert code == 0
    assert "wrote Chrome trace" in capsys.readouterr().out
    with open(trace_path) as handle:
        validate_chrome_trace(json.load(handle))


def test_serve_check_mode(saved_kb, capsys):
    code = main(["serve", "--graph", saved_kb, "--check"])
    assert code == 0
    out = capsys.readouterr().out
    assert "serving on http://" in out
    assert "healthz" in out
    assert "search smoke" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
