"""Wikidata JSON dump ingestion."""

import io
import json

import pytest

from repro.graph.wikidata import (
    COMMON_PROPERTY_LABELS,
    load_wikidata_dump,
    parse_wikidata_dump,
)


def _entity(entity_id, label=None, claims=None):
    entity = {"id": entity_id, "type": "item"}
    if label is not None:
        entity["labels"] = {"en": {"language": "en", "value": label}}
    if claims:
        entity["claims"] = {
            prop: [
                {
                    "mainsnak": {
                        "snaktype": "value",
                        "datavalue": {
                            "type": "wikibase-entityid",
                            "value": {"id": target},
                        },
                    }
                }
                for target in targets
            ]
            for prop, targets in claims.items()
        }
    return entity


def _dump_text(entities, array_format=True):
    lines = [json.dumps(entity) for entity in entities]
    if array_format:
        return "[\n" + ",\n".join(lines) + "\n]\n"
    return "\n".join(lines) + "\n"


SAMPLE = [
    _entity("Q1", "SQL", {"P31": ["Q3"]}),
    _entity("Q2", "SPARQL", {"P31": ["Q3"], "P921": ["Q4"]}),
    _entity("Q3", "query language"),
    _entity("Q4", "RDF"),
    _entity("Q5", None, {"P31": ["Q3"]}),          # no English label
    _entity("Q6", "dangling", {"P31": ["Q99"]}),   # target never defined
]


@pytest.mark.parametrize("array_format", [True, False])
def test_parse_both_dump_formats(array_format):
    handle = io.StringIO(_dump_text(SAMPLE, array_format))
    graph, stats = parse_wikidata_dump(
        handle, property_labels=COMMON_PROPERTY_LABELS
    )
    assert stats.entities_seen == 6
    assert stats.entities_kept == 5       # Q5 filtered (no English label)
    assert graph.n_nodes == 5
    # Q1->Q3, Q2->Q3, Q2->Q4 survive; Q5's and Q6's edges drop.
    assert graph.n_edges == 3
    assert stats.edges_added == 3
    assert "instance of" in graph.predicates
    assert "main subject" in graph.predicates


def test_unmapped_property_keeps_id():
    entities = [
        _entity("Q1", "a", {"P9999": ["Q2"]}),
        _entity("Q2", "b"),
    ]
    graph, _ = parse_wikidata_dump(io.StringIO(_dump_text(entities)))
    assert "P9999" in graph.predicates


def test_malformed_lines_counted_not_fatal():
    text = '[\n{"id": "Q1", "labels": {"en": {"value": "a"}}},\nnot json,\n42,\n]\n'
    graph, stats = parse_wikidata_dump(io.StringIO(text))
    assert stats.malformed_lines == 2
    assert graph.n_nodes == 1


def test_non_entity_snaks_ignored():
    entity = {
        "id": "Q1",
        "labels": {"en": {"value": "thing"}},
        "claims": {
            "P569": [  # a time-valued claim: not an edge
                {
                    "mainsnak": {
                        "snaktype": "value",
                        "datavalue": {"type": "time", "value": {"time": "x"}},
                    }
                }
            ],
            "P31": [{"mainsnak": {"snaktype": "novalue"}}],
        },
    }
    graph, stats = parse_wikidata_dump(
        io.StringIO(_dump_text([entity]))
    )
    assert graph.n_edges == 0
    assert stats.statements_seen == 0


def test_max_entities_sampling():
    handle = io.StringIO(_dump_text(SAMPLE))
    graph, stats = parse_wikidata_dump(handle, max_entities=2)
    assert stats.entities_seen == 2
    assert graph.n_nodes <= 2


def test_load_from_file_and_search(tmp_path):
    path = tmp_path / "dump.json"
    path.write_text(_dump_text(SAMPLE))
    graph, _ = load_wikidata_dump(
        str(path), property_labels=COMMON_PROPERTY_LABELS
    )
    from repro import KeywordSearchEngine

    engine = KeywordSearchEngine(graph, average_distance=2.0)
    result = engine.search("sql sparql", k=2)
    assert result.answers
    texts = {graph.node_text[n] for n in result.answers[0].graph.nodes}
    assert {"SQL", "SPARQL"} <= texts


def test_self_loop_statements_dropped():
    entities = [_entity("Q1", "a", {"P31": ["Q1"]})]
    graph, stats = parse_wikidata_dump(io.StringIO(_dump_text(entities)))
    assert graph.n_edges == 0


@pytest.mark.parametrize("array_format", [True, False])
def test_streaming_import_matches_in_ram(tmp_path, array_format):
    """The two-pass streaming importer builds a bitwise-identical graph."""
    import numpy as np

    from repro.graph.store import open_store
    from repro.graph.wikidata import load_wikidata_dump_streaming

    entities = SAMPLE + [
        _entity("Q6", "duplicate edges", {"P31": ["Q3", "Q3"], "P921": ["Q4"]}),
        _entity("Q7", "forward ref", {"P279": ["Q8"]}),
        _entity("Q8", "defined later"),
    ]
    path = tmp_path / "dump.json"
    path.write_text(_dump_text(entities, array_format))

    expected, expected_stats = load_wikidata_dump(
        str(path), property_labels=COMMON_PROPERTY_LABELS
    )
    store = tmp_path / "wd.csrstore"
    info, stats = load_wikidata_dump_streaming(
        str(path), str(store), property_labels=COMMON_PROPERTY_LABELS,
        chunk_edges=2, window_rows=2,
    )
    assert stats == expected_stats
    assert (info.n_nodes, info.n_edges) == (expected.n_nodes, expected.n_edges)
    streamed = open_store(store)
    for name in ("out", "inc", "adj"):
        left, right = getattr(streamed, name), getattr(expected, name)
        assert np.array_equal(left.indptr, right.indptr)
        assert np.array_equal(left.indices, right.indices)
        assert np.array_equal(left.labels, right.labels)
    assert list(streamed.node_text) == list(expected.node_text)
    assert streamed.predicates.to_list() == expected.predicates.to_list()


def test_streaming_import_respects_max_entities(tmp_path):
    from repro.graph.store import open_store
    from repro.graph.wikidata import load_wikidata_dump_streaming

    path = tmp_path / "dump.json"
    path.write_text(_dump_text(SAMPLE))
    expected, _ = load_wikidata_dump(str(path), max_entities=2)
    store = tmp_path / "wd.csrstore"
    info, stats = load_wikidata_dump_streaming(
        str(path), str(store), max_entities=2
    )
    assert stats.entities_seen == 2
    assert info.n_nodes == expected.n_nodes
    assert open_store(store).n_edges == expected.n_edges
