"""Exact DPBF group Steiner tree solver (test oracle)."""

import itertools

import numpy as np
import pytest

from repro.baselines.dpbf import dpbf_optimal_cost, dpbf_search
from repro.graph.algorithms import bfs_levels
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain_graph, grid_graph, random_graph


def _sets(*groups):
    return [np.array(g, dtype=np.int64) for g in groups]


def test_chain_two_groups():
    chain = chain_graph(5)
    tree = dpbf_search(chain, _sets([0], [4]))
    assert tree is not None
    assert tree.cost == 4
    assert tree.nodes == {0, 1, 2, 3, 4}


def test_single_group_cost_zero():
    chain = chain_graph(4)
    tree = dpbf_search(chain, _sets([2]))
    assert tree.cost == 0
    assert tree.nodes == {2}


def test_shared_node_covers_two_groups():
    chain = chain_graph(4)
    assert dpbf_optimal_cost(chain, _sets([1], [1])) == 0


def test_three_groups_star():
    # Star: center 0, leaves 1..4 — the optimal tree for three leaves
    # uses the center, cost 3.
    builder = GraphBuilder()
    builder.add_node("center")
    for i in range(4):
        leaf = builder.add_node(f"leaf{i}")
        builder.add_edge(0, leaf, "p")
    graph = builder.build()
    assert dpbf_optimal_cost(graph, _sets([1], [2], [3])) == 3


def test_group_picks_cheapest_member():
    chain = chain_graph(6)
    # Group 2 may be satisfied by node 1 (near 0) or node 5 (far).
    cost = dpbf_optimal_cost(chain, _sets([0], [1, 5]))
    assert cost == 1


def test_disconnected_returns_none():
    builder = GraphBuilder()
    for i in range(4):
        builder.add_node(str(i))
    builder.add_edge(0, 1, "p")
    builder.add_edge(2, 3, "p")
    graph = builder.build()
    assert dpbf_optimal_cost(graph, _sets([0], [3])) is None


def test_rejects_bad_inputs(chain5):
    with pytest.raises(ValueError):
        dpbf_optimal_cost(chain5, [])
    with pytest.raises(ValueError):
        dpbf_optimal_cost(chain5, _sets([0], []))
    with pytest.raises(ValueError):
        dpbf_optimal_cost(chain5, _sets(*[[0]] * 12))


def _brute_force_gst_cost(graph, groups):
    """Enumerate connecting subtrees by brute force (tiny graphs only)."""
    n = graph.n_nodes
    best = None
    nodes = list(range(n))
    for size in range(1, n + 1):
        for subset in itertools.combinations(nodes, size):
            subset_set = set(subset)
            if not all(any(g in subset_set for g in group) for group in groups):
                continue
            # Connected check via BFS restricted to the subset.
            start = subset[0]
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor in graph.neighbors(node):
                    neighbor = int(neighbor)
                    if neighbor in subset_set and neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            if seen != subset_set:
                continue
            cost = size - 1  # a tree over `size` nodes has size-1 edges
            if best is None or cost < best:
                best = cost
        if best is not None and best == size - 1:
            # Costs only grow with subset size: safe to stop early.
            break
    return best


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_dpbf_matches_brute_force(seed):
    graph = random_graph(8, 14, seed=seed)
    rng = np.random.default_rng(seed)
    groups = []
    for _ in range(int(rng.integers(2, 4))):
        size = int(rng.integers(1, 3))
        groups.append(np.unique(rng.integers(0, 8, size=size)))
    expected = _brute_force_gst_cost(graph, [set(map(int, g)) for g in groups])
    actual = dpbf_optimal_cost(graph, groups)
    assert actual == expected


def test_tree_edges_form_connected_cover():
    grid = grid_graph(3, 3)
    tree = dpbf_search(grid, _sets([0], [8], [2]))
    assert tree is not None
    # The edge set connects all terminals.
    adjacency = {}
    for u, v in tree.edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    seen = {tree.root}
    stack = [tree.root]
    while stack:
        node = stack.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    assert {0, 8, 2} <= seen
    assert len(tree.edges) == tree.cost
