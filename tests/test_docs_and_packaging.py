"""Documentation and packaging hygiene.

The documentation deliverable includes doc comments on every public
item; these meta-tests keep that true as the codebase evolves, and check
the packaging markers downstream users rely on.
"""

import importlib
import inspect
import os
import pkgutil

import pytest

import repro

_SKIP_MEMBERS = {"__main__"}


def _public_modules():
    """Every repro module, recursively."""
    modules = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.split(".")[-1] in _SKIP_MEMBERS:
            continue
        modules.append(info.name)
    return modules


@pytest.mark.parametrize("module_name", _public_modules())
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-exports are documented at their home
        if inspect.isclass(member) or inspect.isfunction(member):
            assert member.__doc__ and member.__doc__.strip(), (
                f"{module_name}.{name} lacks a docstring"
            )


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_py_typed_marker_shipped():
    package_dir = os.path.dirname(repro.__file__)
    assert os.path.exists(os.path.join(package_dir, "py.typed"))


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_repository_docs_exist():
    root = os.path.dirname(os.path.dirname(repro.__file__))
    repo_root = os.path.dirname(root)
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert os.path.exists(os.path.join(repo_root, doc)), doc
