"""Out-of-core CSR store: round-trips, streaming build, zero-copy workers.

The mmap tier's contract is *behavioral identity*: a graph opened from a
``.csrstore`` file (memory-mapped or materialized) must be bitwise
indistinguishable from the in-RAM build it was saved from — same arrays,
same answers from every backend, same validation. These tests pin that,
plus the failure modes (corrupt / truncated / wrong-version files), the
streaming builder's parity with :class:`GraphBuilder`, the path-keyed
warm-pool attach that survives graph reloads, and the mmap-aware memory
accounting surfaced through ``/statz``.
"""

import json
import os
import shutil
import struct

import numpy as np
import pytest

from repro.core.state import SearchState
from repro.graph.builder import GraphBuilder, StreamingGraphBuilder
from repro.graph.generators import (
    WikiKBConfig,
    build_wiki_kb_store,
    wiki_like_kb,
)
from repro.graph.io import load_graph, save_graph
from repro.graph.store import (
    CSRStoreError,
    MAGIC,
    STORE_SUFFIX,
    TextBlob,
    allocated_nbytes,
    memmap_base,
    open_store,
    open_worker_arrays,
    read_info,
    resident_nbytes,
    save_store,
)
from repro.parallel import (
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
)
from repro.parallel import pool as pool_module

from test_fused_kernel import _fuzz_kb, _fuzz_problem, _run_backend


@pytest.fixture(autouse=True)
def _drain_warm_pools():
    yield
    pool_module.shutdown_all()


@pytest.fixture(scope="module")
def kb_graph():
    return _fuzz_kb(3)


@pytest.fixture(scope="module")
def store_path(kb_graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / ("kb" + STORE_SUFFIX)
    save_store(kb_graph, path, name="fuzz-3", seed=3)
    return str(path)


def _assert_graphs_bitwise_equal(actual, expected):
    for name in ("out", "inc", "adj"):
        left, right = getattr(actual, name), getattr(expected, name)
        for attr in ("indptr", "indices", "labels"):
            assert np.array_equal(
                getattr(left, attr), getattr(right, attr)
            ), f"{name}.{attr} diverged"
        assert getattr(left, attr).dtype == getattr(right, attr).dtype
    assert np.array_equal(
        actual.adj.degree_array, expected.adj.degree_array
    )
    assert np.array_equal(actual.adj.indices64, expected.adj.indices64)
    assert list(actual.node_text) == list(expected.node_text)
    assert actual.predicates.to_list() == expected.predicates.to_list()


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mmap", [True, False])
def test_round_trip_bitwise_identical(kb_graph, store_path, mmap):
    reopened = open_store(store_path, mmap=mmap)
    _assert_graphs_bitwise_equal(reopened, kb_graph)
    reopened.validate()
    assert reopened.store is not None
    assert reopened.store.mmap is mmap
    if mmap:
        assert memmap_base(reopened.adj.indices) is not None
    else:
        assert memmap_base(reopened.adj.indices) is None
    # The frozen-array contract holds for both open modes.
    with pytest.raises(ValueError):
        reopened.adj.indices[0] = 1


def test_load_graph_dispatches_on_magic_and_suffix(kb_graph, store_path, tmp_path):
    by_magic = load_graph(store_path)
    assert by_magic.store is not None and by_magic.store.mmap
    # Prefix form: <prefix>.csrstore is found when no NPZ exists.
    prefix = store_path[: -len(STORE_SUFFIX)]
    by_suffix = load_graph(prefix)
    assert by_suffix.store is not None
    # NPZ keeps precedence when both exist at the same prefix.
    both = tmp_path / "both"
    save_graph(kb_graph, str(both))
    save_store(kb_graph, str(both) + STORE_SUFFIX)
    npz_loaded = load_graph(str(both))
    assert npz_loaded.store is None
    _assert_graphs_bitwise_equal(npz_loaded, kb_graph)


def test_read_info_reports_sections(store_path, kb_graph):
    info = read_info(store_path)
    assert info.n_nodes == kb_graph.n_nodes
    assert info.n_edges == kb_graph.n_edges
    assert info.store_bytes == os.path.getsize(store_path)
    assert 0 < info.array_bytes <= info.store_bytes
    assert "adj_indices" in info.sections


# ---------------------------------------------------------------------------
# Error paths
# ---------------------------------------------------------------------------
def test_truncated_store_is_rejected(store_path, tmp_path):
    clone = tmp_path / "trunc.csrstore"
    shutil.copyfile(store_path, clone)
    size = os.path.getsize(clone)
    with open(clone, "r+b") as handle:
        handle.truncate(size // 2)
    with pytest.raises(CSRStoreError, match="truncated"):
        open_store(clone)


def test_bad_magic_is_rejected(store_path, tmp_path):
    clone = tmp_path / "magic.csrstore"
    shutil.copyfile(store_path, clone)
    with open(clone, "r+b") as handle:
        handle.write(b"NOTSTORE")
    with pytest.raises(CSRStoreError, match="magic"):
        read_info(clone)


def test_version_mismatch_is_rejected(store_path, tmp_path):
    clone = tmp_path / "version.csrstore"
    shutil.copyfile(store_path, clone)
    with open(clone, "r+b") as handle:
        handle.seek(len(MAGIC))
        handle.write(struct.pack("<I", 99))
    with pytest.raises(CSRStoreError, match="version"):
        open_store(clone)


def test_corrupt_header_is_rejected(store_path, tmp_path):
    clone = tmp_path / "header.csrstore"
    shutil.copyfile(store_path, clone)
    with open(clone, "r+b") as handle:
        handle.seek(len(MAGIC) + 8)
        handle.write(b"\xff\xff\xff\xff")
    with pytest.raises(CSRStoreError):
        read_info(clone)


# ---------------------------------------------------------------------------
# Streaming builder parity
# ---------------------------------------------------------------------------
def test_streaming_generator_matches_in_ram_build(tmp_path):
    config = WikiKBConfig(
        name="stream-parity", seed=11,
        n_papers=70, n_people=30, n_misc=25, n_venues=6, n_orgs=6,
    )
    expected, _ = wiki_like_kb(config)
    # Tiny chunk/window sizes force many spill runs and merge windows.
    info, _ = build_wiki_kb_store(
        tmp_path / "p.csrstore", config, chunk_edges=97, window_rows=64,
    )
    assert info.n_nodes == expected.n_nodes
    assert info.n_edges == expected.n_edges
    streamed = open_store(tmp_path / "p.csrstore")
    _assert_graphs_bitwise_equal(streamed, expected)
    streamed.validate()


def test_streaming_builder_dedups_like_graphbuilder(tmp_path):
    in_ram = GraphBuilder()
    streaming = StreamingGraphBuilder(chunk_edges=3, window_rows=2)
    for builder in (in_ram, streaming):
        nodes = [builder.add_node(f"node {i}") for i in range(5)]
        for _ in range(3):  # duplicate triples collapse to one edge
            builder.add_edge(nodes[0], nodes[1], "dup")
        builder.add_edge(nodes[1], nodes[0], "dup")  # reverse is distinct
        builder.add_edge(nodes[2], nodes[3], "other")
        builder.add_edge(nodes[3], nodes[2], "dup")
    expected = in_ram.build()
    info = streaming.finalize(tmp_path / "d.csrstore")
    assert info.n_edges == expected.n_edges == 4
    _assert_graphs_bitwise_equal(open_store(tmp_path / "d.csrstore"), expected)


def test_streaming_builder_validation_errors(tmp_path):
    builder = StreamingGraphBuilder()
    try:
        a, b = builder.add_node("a"), builder.add_node("b")
        with pytest.raises(ValueError, match="self-loop"):
            builder.add_edge(a, a, "p")
        with pytest.raises(ValueError, match="out of range"):
            builder.add_edge(a, 99, "p")
        with pytest.raises(ValueError, match="unknown predicate"):
            builder.add_edge(a, b, 7)
        assert builder.add_node("b-again", key="k") == builder.add_node(
            "ignored", key="k"
        )
        builder.finalize(tmp_path / "v.csrstore")
        with pytest.raises(RuntimeError, match="finalized"):
            builder.add_edge(a, b, "p")
        with pytest.raises(RuntimeError, match="once"):
            builder.finalize(tmp_path / "v2.csrstore")
    finally:
        builder.close()


# ---------------------------------------------------------------------------
# Backend parity on mmap-opened graphs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 4, 9])
def test_all_backends_bitwise_identical_on_mmap_store(tmp_path, seed):
    graph = _fuzz_kb(seed)
    path = tmp_path / ("g" + STORE_SUFFIX)
    save_store(graph, path)
    mapped = open_store(path)
    q = 2 + seed % 7
    sets, activation, k = _fuzz_problem(graph, seed * 17 + 5, q)
    reference = _run_backend(SequentialBackend(), graph, sets, activation, k)
    contenders = {
        "sequential": SequentialBackend(),
        "threads": ThreadPoolBackend(n_threads=2),
        "vectorized": VectorizedBackend(),
        "vectorized-numpy": VectorizedBackend(native=False),
    }
    for name, backend in contenders.items():
        result = _run_backend(backend, mapped, sets, activation, k)
        assert np.array_equal(
            result.state.matrix, reference.state.matrix
        ), f"{name}: M diverged on mmap store (seed {seed})"
        assert sorted(result.central_nodes) == sorted(reference.central_nodes)
        assert result.depth == reference.depth


@pytest.mark.skipif(
    not ProcessPoolBackend.is_supported(),
    reason="requires the fork start method",
)
def test_process_pool_attaches_by_store_path_and_survives_reload(tmp_path):
    graph = _fuzz_kb(6)
    path = tmp_path / ("g" + STORE_SUFFIX)
    save_store(graph, path)
    mapped = open_store(path)
    sets, activation, k = _fuzz_problem(graph, 61, q=3)
    reference = _run_backend(SequentialBackend(), graph, sets, activation, k)

    backend = ProcessPoolBackend(mapped, n_processes=1, persistent=True)
    assert backend.pool.store_path == str(mapped.store.path)
    result = _run_backend(backend, mapped, sets, activation, k)
    assert np.array_equal(result.state.matrix, reference.state.matrix)
    assert sorted(result.central_nodes) == sorted(reference.central_nodes)
    pool_before = backend.pool
    pids_before = pool_before.worker_pids()
    assert pids_before, "pool should be warm after a dispatch"

    # Drop the graph object entirely and reopen the same store: the
    # path-keyed registry must hand back the very same live pool.
    del mapped, backend, result
    reopened = open_store(path)
    pool_after = pool_module.get_pool(reopened, 1)
    assert pool_after is pool_before
    assert pool_after.worker_pids() == pids_before
    assert pool_after.respawn_count == 0

    backend2 = ProcessPoolBackend(reopened, n_processes=1, persistent=True)
    result2 = _run_backend(backend2, reopened, sets, activation, k)
    assert np.array_equal(result2.state.matrix, reference.state.matrix)


def test_open_worker_arrays_match_graph(kb_graph, store_path):
    indptr, indices = open_worker_arrays(store_path)
    assert np.array_equal(indptr, kb_graph.adj.indptr)
    assert np.array_equal(indices, kb_graph.adj.indices)
    assert memmap_base(indptr) is not None


# ---------------------------------------------------------------------------
# Text blob
# ---------------------------------------------------------------------------
def test_textblob_sequence_behavior(store_path, kb_graph):
    graph = open_store(store_path)
    blob = graph.node_text
    assert isinstance(blob, TextBlob)
    assert len(blob) == kb_graph.n_nodes
    assert blob[0] == kb_graph.node_text[0]
    assert blob[-1] == kb_graph.node_text[-1]
    assert blob[2:5] == list(kb_graph.node_text[2:5])
    assert list(iter(blob))[:10] == list(kb_graph.node_text[:10])
    with pytest.raises(IndexError):
        blob[len(blob)]


# ---------------------------------------------------------------------------
# Memory accounting (satellite: resident-estimate, not on-disk-as-heap)
# ---------------------------------------------------------------------------
def test_memory_report_distinguishes_mmap_from_heap(kb_graph, store_path):
    in_ram = kb_graph.memory_report()
    assert in_ram["mmap"] is False
    assert in_ram["resident_nbytes"] == in_ram["csr_nbytes"]
    assert in_ram["store_path"] is None

    mapped = open_store(store_path).memory_report()
    assert mapped["mmap"] is True
    assert mapped["store_path"] == str(store_path)
    assert mapped["store_bytes"] == os.path.getsize(store_path)
    assert 0 <= mapped["resident_nbytes"] <= mapped["csr_nbytes"]
    assert mapped["csr_nbytes"] == in_ram["csr_nbytes"]


def test_resident_and_allocated_nbytes_helpers(store_path):
    plain = np.arange(1024, dtype=np.int64)
    assert resident_nbytes(plain) is None
    assert allocated_nbytes(plain) == plain.nbytes

    graph = open_store(store_path)
    mapped = graph.adj.indices
    estimate = resident_nbytes(mapped)
    if estimate is not None:  # mincore may be unavailable on some libcs
        assert 0 <= estimate <= mapped.nbytes
        assert allocated_nbytes(mapped) == estimate
    # Touch every page: the whole array must then be resident.
    mapped.sum()
    touched = resident_nbytes(mapped)
    if touched is not None:
        assert touched == mapped.nbytes


def test_search_state_nbytes_counts_heap_exactly():
    state = SearchState.initialize(
        64,
        [np.array([0, 1], dtype=np.int64), np.array([5], dtype=np.int64)],
        np.zeros(64, dtype=np.int32),
    )
    expected = sum(
        a.nbytes
        for a in (
            state.matrix, state.f_identifier, state.c_identifier,
            state.keyword_node, state.central_level, state.activation,
            state.finite_count, state.frontier,
        )
    )
    assert state.nbytes() == expected


def test_statz_reports_storage_section(store_path):
    from repro.core.engine import KeywordSearchEngine
    from repro.obs.metrics import MetricsRegistry
    from repro.service import SearchService
    from repro.text.inverted_index import InvertedIndex

    graph = open_store(store_path)
    engine = KeywordSearchEngine(
        graph,
        backend=VectorizedBackend(),
        index=InvertedIndex.from_graph(graph),
    )
    service = SearchService(engine, registry=MetricsRegistry())
    status, content_type, body = service.handle_path("/statz")
    assert status == 200
    payload = json.loads(body)
    storage = payload["storage"]
    assert storage["mmap"] is True
    assert storage["store_path"] == str(store_path)
    assert storage["resident_nbytes"] <= storage["csr_nbytes"]
