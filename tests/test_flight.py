"""The query flight recorder (``repro.obs.flight``) and its wiring.

Covers the ring-buffer/slow-log mechanics, the engine integration
(every query recorded, errors linked by query id and phase), the
``REPRO_OBS=0`` parity contract (disabled path identical to the
untraced seed), and the process tier: worker chunk spans recorded in
the pool workers must come back stitched under the parent query span.
"""

import json

import pytest

from repro.core.engine import KeywordSearchEngine
from repro.core.results import EmptyQueryError
from repro.instrumentation import PhaseTimer
from repro.obs import FlightRecorder, WorkerSpanRecorder, stitch_worker_spans
from repro.obs.flight import query_spans, spans_to_chrome_trace
from repro.obs.tracing import Tracer, validate_chrome_trace
from repro.parallel import ProcessPoolBackend, VectorizedBackend


@pytest.fixture()
def engine(tiny_kb):
    graph, _ = tiny_kb
    return KeywordSearchEngine(graph, backend=VectorizedBackend())


# ---------------------------------------------------------------------------
# Recorder mechanics
# ---------------------------------------------------------------------------
def test_engine_records_every_query(engine):
    flight = FlightRecorder(max_records=8, slow_ms=0)
    engine.flight = flight
    result = engine.search("machine learning", k=3)
    assert flight.completed == 1
    record = flight.get(result.query_id)
    assert record is not None
    assert record.outcome == "ok"
    assert record.query == "machine learning"
    assert record.keywords == ("machin", "learn")
    assert record.backend == "vectorized"
    assert record.n_answers == len(result.answers)
    assert record.depth == result.depth
    assert record.duration_ms > 0
    assert "total" in record.phases
    # Every record carries a span tree even without an engine tracer.
    names = {span["name"] for span in record.spans}
    assert "query" in names
    assert any(name.startswith("phase:") for name in names)
    validate_chrome_trace(record.chrome_trace())
    engine.flight = None


def test_ring_evicts_but_count_is_exact(engine):
    flight = FlightRecorder(max_records=3, slow_ms=0)
    engine.flight = flight
    for _ in range(5):
        engine.search("machine learning", k=1)
    assert flight.completed == 5
    recent = flight.recent()
    assert len(recent) == 3
    # Newest first, ids monotone.
    ids = [record.query_id for record in recent]
    assert ids == sorted(ids, reverse=True)
    engine.flight = None


def test_slow_log_persists_trace(engine, tmp_path):
    flight = FlightRecorder(
        max_records=4, slow_ms=1e-6, slow_trace_dir=str(tmp_path)
    )
    engine.flight = flight
    result = engine.search("machine learning", k=1)
    record = flight.get(result.query_id)
    assert record.slow
    assert record.trace is not None  # persisted eagerly
    assert flight.slow_queries()[0].query_id == result.query_id
    trace_file = tmp_path / f"slow_query_{result.query_id}.trace.json"
    assert trace_file.exists()
    payload = json.loads(trace_file.read_text(encoding="utf-8"))
    validate_chrome_trace(payload)
    engine.flight = None


def test_failed_query_recorded_with_phase_and_id(engine):
    flight = FlightRecorder(max_records=4, slow_ms=0)
    engine.flight = flight
    with pytest.raises(EmptyQueryError) as excinfo:
        engine.search("zzzzqqq")
    error = excinfo.value
    assert error.query_id is not None
    assert error.phase == "initialization"
    record = flight.get(error.query_id)
    assert record.outcome == "error"
    assert record.error_phase == "initialization"
    assert record.dropped_terms == ("zzzzqqq",)
    assert "no query term matches" in record.error
    engine.flight = None


def test_debug_payload_shape(engine):
    flight = FlightRecorder(max_records=4, slow_ms=0)
    engine.flight = flight
    engine.search("machine learning", k=1)
    payload = flight.debug_payload()
    assert payload["capacity"] == 4
    assert payload["completed"] == 1
    assert payload["recent"][0]["outcome"] == "ok"
    assert payload["slow"] == []
    breakdown = flight.phase_breakdown_ms()
    assert "total" in breakdown and breakdown["total"] > 0
    engine.flight = None


def test_disabled_recorder_capacity_zero(engine):
    flight = FlightRecorder(max_records=0, slow_ms=0)
    engine.flight = flight
    assert not flight.enabled
    result = engine.search("machine learning", k=1)
    assert result.query_id is None
    assert flight.completed == 0
    engine.flight = None


# ---------------------------------------------------------------------------
# REPRO_OBS=0 parity: the disabled path is the untraced seed path
# ---------------------------------------------------------------------------
def test_repro_obs_zero_parity(engine, monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "0")
    flight = FlightRecorder(max_records=8, slow_ms=0)
    engine.flight = flight
    assert not flight.enabled  # kill-switch re-checked per query
    result = engine.search("machine learning", k=1)
    # Plain PhaseTimer (not the tracing subclass), no query id, no
    # record committed: byte-identical to the seed hot path.
    assert type(result.timer) is PhaseTimer
    assert result.query_id is None
    assert flight.completed == 0
    monkeypatch.delenv("REPRO_OBS")
    assert flight.enabled
    engine.flight = None


# ---------------------------------------------------------------------------
# Per-query span slicing on a shared tracer
# ---------------------------------------------------------------------------
def test_query_spans_slices_by_ancestry():
    tracer = Tracer(enabled=True)
    with tracer.span("query") as first:
        with tracer.span("phase:expansion"):
            pass
    with tracer.span("query") as second:
        with tracer.span("phase:top_down"):
            pass
    first_slice = query_spans(tracer, first)
    assert {span.name for span in first_slice} == {"query", "phase:expansion"}
    second_slice = query_spans(tracer, second)
    assert {span.name for span in second_slice} == {"query", "phase:top_down"}
    trace = spans_to_chrome_trace(
        [
            {
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "tid": span.tid,
                "thread_name": span.thread_name,
                "start_ns": span.start_ns,
                "duration_ns": span.duration_ns,
                "attrs": dict(span.attrs),
            }
            for span in first_slice
        ]
    )
    validate_chrome_trace(trace)


# ---------------------------------------------------------------------------
# Cross-process stitching
# ---------------------------------------------------------------------------
def test_stitch_worker_spans_unit():
    tracer = Tracer(enabled=True)
    recorder = WorkerSpanRecorder(tracer.epoch_ns)
    with recorder.span("worker_chunk", level=1, chunk_size=4):
        with recorder.span("attach"):
            pass
    buffer = recorder.payload()
    with tracer.span("process_pool.map") as dispatch:
        pass
    stitch_worker_spans(tracer, dispatch, [buffer, None])
    spans = {span.name: span for span in tracer.finished_spans()}
    chunk = spans["worker_chunk"]
    attach = spans["attach"]
    assert chunk.parent_id == dispatch.span_id
    assert attach.parent_id == chunk.span_id
    assert chunk.attrs["level"] == 1
    assert chunk.attrs["chunk_size"] == 4
    assert "worker_pid" in chunk.attrs
    assert chunk.thread_name.startswith("worker-")


@pytest.mark.skipif(
    not ProcessPoolBackend.is_supported(), reason="fork unavailable"
)
def test_process_tier_record_contains_stitched_worker_spans(tiny_kb):
    graph, _ = tiny_kb
    engine = KeywordSearchEngine(
        graph, backend=ProcessPoolBackend(graph, n_processes=2)
    )
    flight = FlightRecorder(max_records=4, slow_ms=0)
    engine.flight = flight
    with engine.backend:
        # A multi-hop query: depth > 0 guarantees pool dispatches.
        result = engine.search("machine learning graph", k=3)
    assert result.depth > 0
    record = flight.get(result.query_id)
    spans = {span["span_id"]: span for span in record.spans}
    chunks = [s for s in record.spans if s["name"] == "worker_chunk"]
    assert chunks, "no worker_chunk spans captured from the pool workers"

    def parent_chain(span):
        names = []
        while span["parent_id"] in spans:
            span = spans[span["parent_id"]]
            names.append(span["name"])
        return names

    chain = parent_chain(chunks[0])
    assert chain[0] == "process_pool.map"
    assert chain[-1] == "query"
    pids = {span["attrs"]["worker_pid"] for span in chunks}
    assert pids  # recorded in the worker processes
    validate_chrome_trace(record.chrome_trace())
