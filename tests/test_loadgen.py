"""The load harness (``repro.bench.loadgen``) and the service SLO bench
(``repro.bench.service_bench``)."""

import json

import numpy as np
import pytest

from repro.bench import (
    ZipfSampler,
    build_workload,
    run_closed_loop,
    run_open_loop,
    run_service_bench,
    validate_service_payload,
    write_service_payload,
)
from repro.core.engine import KeywordSearchEngine
from repro.obs import MetricsRegistry
from repro.parallel import VectorizedBackend
from repro.service import SearchService


@pytest.fixture()
def service(tiny_kb):
    graph, _ = tiny_kb
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    return SearchService(engine, registry=MetricsRegistry())


# ---------------------------------------------------------------------------
# Zipf sampling
# ---------------------------------------------------------------------------
def test_zipf_sampler_deterministic_and_skewed():
    items = [f"q{i}" for i in range(16)]
    a = ZipfSampler(items, s=1.1, seed=7)
    b = ZipfSampler(items, s=1.1, seed=7)
    assert a.sample_many(20) == b.sample_many(20)
    # Probabilities decay monotonically with rank and favor the head.
    p = a.probabilities()
    assert np.all(np.diff(p) < 0)
    assert p[0] > 4 * p[-1]
    # s=0 degenerates to uniform.
    uniform = ZipfSampler(items, s=0.0, seed=7).probabilities()
    assert np.allclose(uniform, 1.0 / len(items))


def test_zipf_sampler_validations_and_spawn():
    with pytest.raises(ValueError):
        ZipfSampler([])
    with pytest.raises(ValueError):
        ZipfSampler(["a"], s=-1.0)
    base = ZipfSampler(["a", "b", "c"], s=1.2, seed=1)
    child = base.spawn(99)
    assert child.items == base.items and child.s == base.s
    assert child.seed == 99


def test_build_workload_samples_indexed_terms(service):
    sampler = build_workload(service.engine.index, knum=2, pool_size=8)
    assert len(sampler.items) == 8
    query = sampler.sample()
    assert len(query.split()) == 2


# ---------------------------------------------------------------------------
# Closed / open loop
# ---------------------------------------------------------------------------
def test_closed_loop_counts_and_latency(service):
    sampler = build_workload(service.engine.index, knum=2, pool_size=8)
    result = run_closed_loop(
        service, sampler, duration_s=0.4, concurrency=2, k=3
    )
    assert result.mode == "closed"
    assert result.concurrency == 2
    assert result.n_requests > 0
    assert result.n_requests == sum(result.status_counts.values())
    assert result.achieved_qps > 0
    assert 0.0 <= result.error_rate <= 1.0
    # Latency numbers come from the service's own /metrics histogram.
    assert result.latency_seconds["count"] == pytest.approx(
        service.registry.histogram(
            "repro_http_request_seconds", endpoint="/search"
        ).summary()["count"]
    )
    ms = result.latency_ms()
    assert set(ms) == {"mean", "p50", "p95", "p99"}
    assert ms["p95"] >= ms["p50"] > 0


def test_open_loop_offers_poisson_arrivals(service):
    sampler = build_workload(service.engine.index, knum=2, pool_size=8)
    result = run_open_loop(
        service, sampler, duration_s=0.5, rate_qps=20.0, k=3
    )
    assert result.mode == "open"
    assert result.offered_qps == 20.0
    assert result.n_requests > 0
    assert result.n_requests == sum(result.status_counts.values())
    assert result.duration_s >= 0.4  # ran for (almost) the full window


def test_loop_validations(service):
    sampler = ZipfSampler(["x"])
    with pytest.raises(ValueError):
        run_closed_loop(service, sampler, concurrency=0)
    with pytest.raises(ValueError):
        run_closed_loop(service, sampler, duration_s=0)
    with pytest.raises(ValueError):
        run_open_loop(service, sampler, rate_qps=0)


# ---------------------------------------------------------------------------
# Service SLO bench
# ---------------------------------------------------------------------------
def test_run_service_bench_payload_valid(tmp_path):
    payload = run_service_bench(
        duration_s=0.3,
        concurrency_sweep=(1, 2),
        pool_size=8,
        slo_ms=60000.0,  # generous: the headline must exist
    )
    validate_service_payload(payload)
    assert payload["schema"] == "repro.bench_service/v1"
    assert payload["dataset"]["scale"] == "wiki-tiny-sim"
    assert len(payload["closed_loop"]) == 2
    headline = payload["headline"]
    assert headline["sustained_qps_at_slo"] > 0
    assert payload["workload"]["zipf_s"] == pytest.approx(1.1)
    assert payload["slo"]["percentile"] == "p95"
    assert payload["open_loop"], "open-loop verification row missing"
    assert payload["phase_breakdown_ms"].get("total", 0) > 0
    out = tmp_path / "BENCH_service.json"
    write_service_payload(out, payload)
    assert validate_service_payload(
        json.loads(out.read_text(encoding="utf-8"))
    ) is None


def test_validate_service_payload_rejects_bad_payloads():
    with pytest.raises(ValueError):
        validate_service_payload({})
    with pytest.raises(ValueError):
        validate_service_payload({"schema": "other/v9"})
