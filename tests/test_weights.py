"""Degree-of-summary weights (Eq. 2)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weights import node_weights, normalize_weights, raw_degree_of_summary
from repro.graph.builder import GraphBuilder
from repro.graph.generators import random_graph, star_graph


def test_star_hub_has_maximal_weight():
    star = star_graph(20)
    weights = node_weights(star)
    assert weights[0] == 1.0  # the hub
    assert (weights[1:] == 0.0).all()  # leaves have no in-edges


def test_raw_weight_matches_eq2_by_hand():
    # Node with in-edges: 3 × "instance of", 1 × "related to".
    builder = GraphBuilder()
    hub = builder.add_node("hub")
    for i in range(3):
        leaf = builder.add_node(f"a{i}")
        builder.add_edge(leaf, hub, "instance of")
    other = builder.add_node("b")
    builder.add_edge(other, hub, "related to")
    graph = builder.build()
    raw = raw_degree_of_summary(graph)
    expected = (3 * math.log2(4) + 1 * math.log2(2)) / 4
    assert abs(raw[hub] - expected) < 1e-12


def test_label_diversity_lowers_weight():
    # Same in-degree (4), one label vs four labels.
    def build(labels):
        builder = GraphBuilder()
        hub = builder.add_node("hub")
        for i, label in enumerate(labels):
            leaf = builder.add_node(f"l{i}")
            builder.add_edge(leaf, hub, label)
        return builder.build()

    uniform = raw_degree_of_summary(build(["p"] * 4))[0]
    diverse = raw_degree_of_summary(build(["p", "q", "r", "s"]))[0]
    assert uniform > diverse


def test_no_in_edges_weight_zero():
    builder = GraphBuilder()
    a = builder.add_node("a")
    b = builder.add_node("b")
    builder.add_edge(a, b, "p")
    raw = raw_degree_of_summary(builder.build())
    assert raw[a] == 0.0
    assert raw[b] > 0.0


def test_empty_graph():
    graph = GraphBuilder().build()
    assert len(node_weights(graph)) == 0


def test_normalize_constant_vector_is_zero():
    assert (normalize_weights(np.array([2.0, 2.0, 2.0])) == 0.0).all()


def test_normalize_range():
    normalized = normalize_weights(np.array([1.0, 3.0, 5.0]))
    assert normalized.min() == 0.0
    assert normalized.max() == 1.0
    assert abs(normalized[1] - 0.5) < 1e-12


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(2, 25), m=st.integers(1, 60))
def test_weights_always_in_unit_interval(seed, n, m):
    graph = random_graph(n, m, seed=seed)
    weights = node_weights(graph)
    assert len(weights) == n
    assert (weights >= 0.0).all()
    assert (weights <= 1.0).all()


def test_wiki_hub_is_heaviest(tiny_kb):
    graph, meta = tiny_kb
    weights = node_weights(graph)
    hub_weights = [weights[node] for node in meta.class_nodes.values()]
    paper_weight = weights[meta.gold_papers["Q1"][0]]
    # Summary class nodes outweigh ordinary papers by a wide margin.
    assert max(hub_weights) == 1.0
    assert paper_weight < 0.3
