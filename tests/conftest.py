"""Shared fixtures and reference oracles for the test suite.

The ``reference_hitting_levels`` oracle is an *independent* re-statement
of the bottom-up search semantics (Section IV-B / Algorithm 2), written
as naively as possible: plain dicts, no shared code with the engines.
Backend tests compare every production implementation against it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.csr import KnowledgeGraph
from repro.graph.generators import (
    Fig1Example,
    WikiKBConfig,
    chain_graph,
    fig1_example,
    random_graph,
    star_graph,
    wiki_like_kb,
)

INF = float("inf")


# ---------------------------------------------------------------------------
# Reference oracle
# ---------------------------------------------------------------------------
def reference_hitting_levels(
    graph: KnowledgeGraph,
    keyword_node_sets: Sequence[Sequence[int]],
    activation: Sequence[int],
    k: int,
    lmax: int = 24,
) -> Tuple[Dict[Tuple[int, int], int], List[Tuple[int, int]]]:
    """Naive level-synchronous simulation of the bottom-up search.

    Returns:
        ``(hit, centrals)`` where ``hit[(node, column)]`` is the hitting
        level and ``centrals`` is the ordered list of (node, depth) pairs.
    """
    q = len(keyword_node_sets)
    keyword_union: Set[int] = set()
    hit: Dict[Tuple[int, int], int] = {}
    frontier: Set[int] = set()
    for column, nodes in enumerate(keyword_node_sets):
        for node in nodes:
            hit[(int(node), column)] = 0
            keyword_union.add(int(node))
            frontier.add(int(node))

    centrals: List[Tuple[int, int]] = []
    central_set: Set[int] = set()
    level = 0
    while level <= lmax:
        if not frontier:
            break
        # Identify central nodes among the current frontier.
        for node in sorted(frontier):
            if node in central_set:
                continue
            if all((node, column) in hit for column in range(q)):
                central_set.add(node)
                centrals.append((node, level))
        if len(centrals) >= k:
            break
        if level == lmax:
            break
        next_frontier: Set[int] = set()
        for node in sorted(frontier):
            if node in central_set:
                continue
            if activation[node] > level:
                next_frontier.add(node)
                continue
            for column in range(q):
                node_level = hit.get((node, column), INF)
                if node_level > level:
                    continue
                for neighbor in graph.neighbors(node):
                    neighbor = int(neighbor)
                    if (neighbor, column) in hit:
                        continue
                    if (
                        neighbor not in keyword_union
                        and activation[neighbor] > level + 1
                    ):
                        next_frontier.add(node)
                        continue
                    hit[(neighbor, column)] = level + 1
                    next_frontier.add(neighbor)
        frontier = next_frontier
        level += 1
    return hit, centrals


def state_hitting_levels(state) -> Dict[Tuple[int, int], int]:
    """Extract finite hitting levels from a SearchState matrix."""
    finite = {}
    matrix = state.matrix
    for node, column in zip(*np.nonzero(matrix != 255)):
        finite[(int(node), int(column))] = int(matrix[node, column])
    return finite


# ---------------------------------------------------------------------------
# Graph fixtures
# ---------------------------------------------------------------------------
@pytest.fixture(scope="session")
def fig1() -> Fig1Example:
    return fig1_example()


@pytest.fixture(scope="session")
def tiny_kb():
    """A small wiki-like KB shared across tests (fast to build)."""
    config = WikiKBConfig(
        name="tiny",
        seed=42,
        n_papers=220,
        n_people=90,
        n_misc=90,
        n_venues=8,
        n_orgs=8,
        gold_papers_per_query=2,
        decoy_papers_per_phrase=1,
    )
    return wiki_like_kb(config)


@pytest.fixture(scope="session")
def tiny_graph(tiny_kb) -> KnowledgeGraph:
    return tiny_kb[0]


@pytest.fixture()
def chain5() -> KnowledgeGraph:
    return chain_graph(5)


@pytest.fixture()
def star6() -> KnowledgeGraph:
    return star_graph(6)


@pytest.fixture()
def diamond() -> KnowledgeGraph:
    """Two parallel length-2 paths between a and d: multi-path territory.

        a - b - d
        a - c - d
    """
    builder = GraphBuilder()
    for text in ("alpha source", "bridge one", "bridge two", "delta target"):
        builder.add_node(text)
    builder.add_edge(0, 1, "r")
    builder.add_edge(0, 2, "r")
    builder.add_edge(1, 3, "r")
    builder.add_edge(2, 3, "r")
    return builder.build()


@pytest.fixture()
def random20() -> KnowledgeGraph:
    return random_graph(20, 50, seed=3)


def zero_activation(graph: KnowledgeGraph) -> np.ndarray:
    return np.zeros(graph.n_nodes, dtype=np.int32)
