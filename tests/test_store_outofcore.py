"""Out-of-core smoke: query a store under an RSS/heap cap below its size.

Gated behind ``REPRO_OOC_SMOKE=1`` (the dedicated CI job sets it; the
tier-1 run skips it) because it stream-builds a ~160k-node store and
forks a rlimit-capped subprocess — a few tens of seconds.

The claim under test is the whole point of the mmap tier: a process
whose *heap* is hard-capped below the CSR's byte size can still open the
store (read-only file-backed mappings are exempt from ``RLIMIT_DATA``)
and answer queries bitwise-identically to an unconstrained in-RAM run.
The child first proves the cap bites — a heap allocation of the CSR's
size must raise ``MemoryError`` — so a pass cannot come from an
unenforced limit; kernels too old to enforce ``RLIMIT_DATA`` (< 4.7)
report themselves and the test skips.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_OOC_SMOKE") != "1",
    reason="set REPRO_OOC_SMOKE=1 to run the out-of-core smoke",
)

#: Heap cap as a fraction of the CSR array bytes — comfortably below 1.0
#: so the "materialize into heap" escape hatch cannot fit.
CAP_FRACTION = 0.85

_CHILD_SCRIPT = """
import hashlib, json, resource, sys

import numpy as np

from repro.core.bottom_up import BottomUpSearch
from repro.graph.store import open_store, read_info
from repro.parallel import VectorizedBackend

path, cap = sys.argv[1], int(sys.argv[2])
info = read_info(path)
resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))
try:
    resource.setrlimit(resource.RLIMIT_RSS, (cap, cap))
except (ValueError, OSError):
    pass

# The cap must make a heap copy of the CSR impossible; otherwise this
# host does not enforce RLIMIT_DATA and the smoke proves nothing.
try:
    np.empty(info.array_bytes, dtype=np.uint8)
except MemoryError:
    pass
else:
    print(json.dumps({"status": "limit-unenforced"}))
    sys.exit(0)

graph = open_store(path)  # read-only file-backed maps are exempt
signatures = []
for seed in (3, 11):
    rng = np.random.default_rng(seed)
    sets = [
        np.unique(rng.integers(0, graph.n_nodes, size=4))
        for _ in range(3)
    ]
    result = BottomUpSearch(graph, backend=VectorizedBackend()).run(
        sets, np.zeros(graph.n_nodes, dtype=np.int32), k=2
    )
    signatures.append({
        "central_nodes": sorted(
            [int(node), int(level)] for node, level in result.central_nodes
        ),
        "depth": int(result.depth),
        "matrix_sha256": hashlib.sha256(
            result.state.matrix.tobytes()
        ).hexdigest(),
    })
print(json.dumps({"status": "ok", "signatures": signatures}))
"""


@pytest.fixture(scope="module")
def smoke_store(tmp_path_factory):
    from repro.bench.store_bench import build_store_subprocess

    path = str(tmp_path_factory.mktemp("ooc") / "smoke.csrstore")
    build = build_store_subprocess("wiki-ooc-smoke", path)
    return path, build


def _unconstrained_signatures(path):
    import hashlib

    from repro.core.bottom_up import BottomUpSearch
    from repro.graph.store import open_store
    from repro.parallel import VectorizedBackend

    graph = open_store(path, mmap=False)  # fully materialized reference
    signatures = []
    for seed in (3, 11):
        rng = np.random.default_rng(seed)
        sets = [
            np.unique(rng.integers(0, graph.n_nodes, size=4))
            for _ in range(3)
        ]
        result = BottomUpSearch(graph, backend=VectorizedBackend()).run(
            sets, np.zeros(graph.n_nodes, dtype=np.int32), k=2
        )
        signatures.append({
            "central_nodes": sorted(
                [int(node), int(level)]
                for node, level in result.central_nodes
            ),
            "depth": int(result.depth),
            "matrix_sha256": hashlib.sha256(
                result.state.matrix.tobytes()
            ).hexdigest(),
        })
    return signatures


def test_capped_process_answers_match_unconstrained(smoke_store, tmp_path):
    path, build = smoke_store
    array_bytes = int(build["array_bytes"])
    cap = int(array_bytes * CAP_FRACTION)
    assert cap < array_bytes

    script = tmp_path / "capped_query.py"
    script.write_text(_CHILD_SCRIPT, encoding="utf-8")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(script), path, str(cap)],
        env=env, capture_output=True, text=True, timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    payload = json.loads(completed.stdout.strip().splitlines()[-1])
    if payload["status"] == "limit-unenforced":
        pytest.skip("kernel does not enforce RLIMIT_DATA")
    assert payload["status"] == "ok"
    assert payload["signatures"] == _unconstrained_signatures(path)


def test_builder_peak_rss_stays_out_of_core(smoke_store):
    """The streaming build's peak RSS must stay well below the CSR size.

    The acceptance bound (< 0.25x) is stated at wiki2018-xl where the
    interpreter baseline is amortized over a 660 MB CSR; at this smoke
    scale (~80 MB CSR, ~45 MB Python baseline) the meaningful bound is
    that the builder never holds the arrays in RAM — peak RSS stays
    under baseline + a small constant, far below baseline + CSR bytes.
    """
    _, build = smoke_store
    assert build["peak_rss_bytes"] < 0.5 * build["array_bytes"] + 120e6
