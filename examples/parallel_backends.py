"""Benchmark the expansion backends against each other on one KB.

The paper's Algorithm 1 is backend-agnostic; the expansion step plugs
into GPU warps, OpenMP threads, or a single core. This script runs the
same query batch through every backend of the reproduction and prints a
per-phase table — a miniature Fig. 6 — plus a cross-check that all
backends returned identical answers (Theorem V.2's determinism).

Run:  python examples/parallel_backends.py
"""

from repro import (
    KeywordSearchEngine,
    LockedDictEngine,
    SequentialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
)
from repro.eval.queries import KeywordWorkload
from repro.graph.generators import wiki_like_kb
from repro.instrumentation import average_timers


def main() -> None:
    graph, _ = wiki_like_kb()
    reference = KeywordSearchEngine(graph, backend=SequentialBackend())
    workload = KeywordWorkload(reference.index, seed=13)
    queries = workload.sample_queries(6, 5)
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges; "
          f"{len(queries)} queries of 6 keywords\n")

    backends = [
        ("sequential (Tnum=1)", SequentialBackend()),
        ("thread pool (CPU-Par)", ThreadPoolBackend(n_threads=4)),
        ("vectorized (GPU-Par analogue)", VectorizedBackend()),
    ]
    signatures = {}
    print(f"{'backend':32} {'expand_ms':>10} {'topdown_ms':>11} {'total_ms':>9}")
    for name, backend in backends:
        engine = KeywordSearchEngine(
            graph,
            backend=backend,
            index=reference.index,
            weights=reference.weights,
            average_distance=reference.average_distance,
        )
        timers, answer_sets = [], []
        for query in queries:
            result = engine.search(query, k=10)
            timers.append(result.timer)
            answer_sets.append(
                tuple(a.graph.central_node for a in result.answers)
            )
        backend.close()
        ms = average_timers(timers)
        signatures[name] = answer_sets
        print(f"{name:32} {ms['expansion']:10.2f} "
              f"{ms['top_down_processing']:11.2f} {ms['total']:9.2f}")

    # The locked dynamic-memory variant (CPU-Par-d) for contrast.
    locked = LockedDictEngine(
        graph, reference.weights, reference.index, n_threads=4
    )
    timers, answer_sets = [], []
    for query in queries:
        result = locked.search(query, reference.activation_for(0.1), k=10)
        timers.append(result.timer)
        answer_sets.append(tuple(a.graph.central_node for a in result.answers))
    ms = average_timers(timers)
    signatures["locked dicts (CPU-Par-d)"] = answer_sets
    print(f"{'locked dicts (CPU-Par-d)':32} {ms['expansion']:10.2f} "
          f"{ms['top_down_processing']:11.2f} {ms['total']:9.2f}")

    unique = {tuple(map(tuple, s)) for s in signatures.values()}
    print(f"\nall backends agree on every answer: {len(unique) == 1}")

    # Per-level expansion profile of one query through the fused kernel —
    # the paper's Fig. 6/7 phase breakdowns resolved per BFS level.
    engine = KeywordSearchEngine(
        graph,
        backend=VectorizedBackend(),
        index=reference.index,
        weights=reference.weights,
        average_distance=reference.average_distance,
    )
    result = engine.search(queries[0], k=10)
    print(f"\nper-level profile of {queries[0]!r} "
          f"(d={result.depth}, {result.n_central_nodes} central nodes):")
    print(f"{'level':>5} {'frontier':>9} {'edges':>9} "
          f"{'new_hits':>9} {'new_central':>12}")
    for record in result.level_profile:
        print(f"{record.level:5d} {record.frontier_size:9d} "
              f"{record.edges_scanned:9d} {record.new_hits:9d} "
              f"{record.new_central:12d}")


if __name__ == "__main__":
    main()
