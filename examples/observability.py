"""Trace a query end to end and inspect the collected telemetry.

Builds the small synthetic KB, runs one traced query, and shows the
three faces of the observability layer:

1. the **flame summary** — the span tree (query → phases → BFS levels →
   expansion chunks) with inclusive milliseconds;
2. the **Chrome trace export** — written to ``query.trace.json``; open
   it in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
3. the **metrics registry** — kernel work counters recorded by the
   expansion backends, rendered as Prometheus text.

The equivalent one-liner is ``python -m repro profile "query" --trace
query.trace.json``. Setting ``REPRO_OBS=0`` disables all of it and
restores the untraced hot path.

Run:  python examples/observability.py
"""

from repro import KeywordSearchEngine, Tracer, VectorizedBackend, get_registry
from repro.graph.generators import wiki_like_kb


def main() -> None:
    graph, _ = wiki_like_kb()
    tracer = Tracer(enabled=True)
    engine = KeywordSearchEngine(
        graph, backend=VectorizedBackend(), tracer=tracer
    )

    result = engine.search("knowledge base rdf sparql", k=5)
    print(f"{len(result.answers)} answers, depth {result.depth}, "
          f"{len(tracer.finished_spans())} spans recorded\n")

    print("flame summary:")
    print(tracer.flame_summary(min_ms=0.01))

    tracer.write_chrome_trace("query.trace.json")
    print("\nwrote query.trace.json — load it in https://ui.perfetto.dev")

    # The level spans carry the kernel work counters as attributes ...
    levels = [s for s in tracer.finished_spans() if s.name == "level"]
    expanded = [s for s in levels if "edges_gathered" in s.attrs]
    if expanded:
        span = expanded[0]
        print(f"\nlevel {span.attrs['level']} span attributes: "
              f"{span.attrs}")

    # ... and the same counters accumulate in the process registry,
    # which the HTTP service serves at GET /metrics.
    kernel_lines = [
        line
        for line in get_registry().render_prometheus().splitlines()
        if line.startswith("repro_kernel_")
    ]
    print("\nkernel counters in the metrics registry:")
    for line in kernel_lines:
        print(f"  {line}")


if __name__ == "__main__":
    main()
