"""Analytics cookbook: traces, batches, redundancy, and DOT export.

Four short recipes on one KB:

1. trace a bottom-up search level by level (the paper's Fig. 4 view);
2. run a query batch with duplicate coalescing;
3. measure answer-list redundancy (the paper's Q11 analysis);
4. export the best answer as GraphViz DOT.

Run:  python examples/answer_analytics.py
"""

import numpy as np

from repro import BatchSearcher, KeywordSearchEngine, VectorizedBackend
from repro.core.bottom_up import BottomUpSearch
from repro.core.trace import SearchTrace
from repro.eval.redundancy import most_repeated_nodes, redundancy_stats
from repro.graph.generators import wiki_like_kb
from repro.viz import central_graph_to_dot

QUERY = "knowledge graph sparql query"


def main() -> None:
    graph, _ = wiki_like_kb()
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())

    # -- 1. trace the bottom-up stage -----------------------------------
    print("=== 1. level-by-level trace ===")
    pairs = engine.index.query_node_sets(QUERY)
    sets = [nodes for _, nodes in pairs if len(nodes)]
    trace = SearchTrace()
    BottomUpSearch(graph, VectorizedBackend()).run(
        sets, engine.activation_for(0.1), k=20, observer=trace
    )
    print(trace.describe())

    # -- 2. batch execution ----------------------------------------------
    print("\n=== 2. batch execution ===")
    queries = [QUERY, "machine translation", QUERY, "gradient descent"]
    report = BatchSearcher(engine, n_workers=2).run(queries, k=5)
    print(f"{len(queries)} queries ({report.unique_queries} unique), "
          f"{report.n_answered} answered, "
          f"mean {report.mean_milliseconds():.1f} ms/query")

    # -- 3. redundancy analysis ------------------------------------------
    print("\n=== 3. answer-list redundancy (top-20) ===")
    result = engine.search(QUERY, k=20)
    node_sets = [answer.graph.nodes for answer in result.answers]
    stats = redundancy_stats(node_sets)
    print(f"answers: {stats.n_answers}; most-repeated node appears in "
          f"{stats.max_node_repetition} answers; "
          f"mean pairwise Jaccard {stats.mean_pairwise_jaccard:.3f}")
    for node, count in most_repeated_nodes(node_sets, k=3):
        print(f"  x{count}: {graph.node_text[node]!r}")

    # -- 4. DOT export ----------------------------------------------------
    print("\n=== 4. GraphViz export ===")
    dot = central_graph_to_dot(
        result.answers[0].graph, graph, result.keywords
    )
    path = "/tmp/central_graph.dot"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dot + "\n")
    print(f"wrote {len(dot.splitlines())} DOT lines to {path}")
    print("render with: dot -Tsvg /tmp/central_graph.dot -o answer.svg")


if __name__ == "__main__":
    main()
