"""Explore the α knob: how degree-of-summary preference shapes answers.

Section IV-C's worked example: with a small α the broad ``data mining``
style topic nodes stay dormant (high minimum activation level) and
answers favor specific entities; with a large α the same summary nodes
activate early and start appearing in top answers — useful for users who
*want* overview topics.

This script prints, per α, the Fig. 3 activation-level distribution and
the role mix of the top answers for a topical query.

Run:  python examples/tune_alpha.py
"""

from collections import Counter

from repro import KeywordSearchEngine, VectorizedBackend
from repro.core.activation import activation_distribution
from repro.graph.generators import ROLE_NAMES, wiki_like_kb

QUERY = "data mining information retrieval"
ALPHAS = (0.05, 0.1, 0.4)


def main() -> None:
    graph, metadata = wiki_like_kb()
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    print(f"graph: {graph.n_nodes} nodes; A = {engine.average_distance:.2f}")
    print(f"query: {QUERY!r}\n")

    for alpha in ALPHAS:
        levels = engine.activation_for(alpha)
        distribution = activation_distribution(levels)
        result = engine.search(QUERY, k=50, alpha=alpha)

        roles = Counter()
        first_topic_rank = None
        first_topic_text = None
        for rank, answer in enumerate(result.answers, start=1):
            for node in answer.graph.nodes:
                role = ROLE_NAMES[int(metadata.roles[node])]
                roles[role] += 1
                is_summaryish = role in ("class", "topic", "venue")
                if is_summaryish and first_topic_rank is None:
                    first_topic_rank = rank
                    first_topic_text = graph.node_text[node]

        print(f"--- alpha = {alpha} ---")
        buckets = ", ".join(
            f"{bucket}: {fraction:.0%}"
            for bucket, fraction in distribution.items()
        )
        print(f"  activation levels  ({buckets})")
        print(f"  total time {result.milliseconds()['total']:.1f} ms, "
              f"d={result.depth}, {result.n_central_nodes} central nodes")
        print(f"  answer node roles (top-50): {dict(roles)}")
        if first_topic_rank is None:
            print("  first summary/topic node in answers: none in top-50")
        else:
            print(f"  first summary/topic node in answers: rank "
                  f"{first_topic_rank} ({first_topic_text!r})")
        print()

    print("Expected shape: higher α maps summary/topic nodes to smaller "
          "activation levels (compare the level distributions above), so "
          "the search can traverse them — top-(k,d) completes at a "
          "smaller depth d with many more Central Nodes. Whether a "
          "summary node *ranks* highly still depends on Eq. 6's weight "
          "mass; the paper's §IV-C 'data mining' anecdote plays out on "
          "the full Wikidata ranking.")


if __name__ == "__main__":
    main()
