"""Quickstart: search a small knowledge graph with Central Graphs.

Builds the paper's Fig. 1 running example (the query-language subgraph
around ``Query language``), replays the Fig. 4 trace with the exact
activation levels from the paper, then shows a free-form search over a
generated Wikidata-style KB.

Run:  python examples/quickstart.py
"""

from repro import KeywordSearchEngine, SequentialBackend, VectorizedBackend
from repro.graph.generators import fig1_example, wiki_like_kb


def fig1_demo() -> None:
    print("=" * 72)
    print("Part 1 — the paper's Fig. 1 example: query 'xml rdf sql'")
    print("=" * 72)
    example = fig1_example()
    engine = KeywordSearchEngine(example.graph, backend=SequentialBackend())
    # Replay the paper's Fig. 4 trace: explicit activation levels.
    result = engine.search(
        "xml rdf sql", k=1, activation_override=example.activation
    )
    print(f"keywords: {result.keywords}")
    print(f"solved top-(k,d) with d = {result.depth} "
          f"({result.n_central_nodes} Central Node(s))")
    for answer in result.answers:
        print()
        print(answer.graph.describe(example.graph.node_text))
    top = result.answers[0].graph
    assert top.central_node == example.central_node
    print("\nNote the multi-paths: four hitting paths carry 'XML' from "
          "v9, and both v4 and v5 carry 'RDF' — one compact graph-shaped "
          "answer instead of eight repetitive trees.")


def wiki_demo() -> None:
    print()
    print("=" * 72)
    print("Part 2 — free-form search over a generated Wikidata-style KB")
    print("=" * 72)
    graph, _ = wiki_like_kb()
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges")
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    print(f"sampled average distance A = {engine.average_distance:.2f}")

    for query in ("knowledge base rdf sparql", "machine translation gradient"):
        result = engine.search(query, k=3)
        print(f"\nquery: {query!r}  "
              f"(total {result.milliseconds()['total']:.1f} ms, "
              f"d={result.depth})")
        for rank, answer in enumerate(result.answers, start=1):
            graph_answer = answer.graph
            central_text = graph.node_text[graph_answer.central_node]
            print(f"  #{rank} score={answer.score:.4f} "
                  f"nodes={graph_answer.n_nodes} "
                  f"central={central_text!r}")


if __name__ == "__main__":
    fig1_demo()
    wiki_demo()
