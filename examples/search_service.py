"""Run the WikiSearch-style HTTP service and query it.

Starts the JSON-over-HTTP search service on an ephemeral port (the
reproduction of the paper's online WikiSearch deployment), issues a few
requests against it through plain urllib, and prints the responses.
Leave it running with ``--serve`` to poke it from a browser.

Run:  python examples/search_service.py [--serve]
"""

import json
import sys
import threading
import urllib.request

from repro import KeywordSearchEngine, VectorizedBackend
from repro.graph.generators import wiki_like_kb
from repro.service import create_server


def main(serve_forever: bool = False) -> None:
    graph, _ = wiki_like_kb()
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    server = create_server(engine, port=8377 if serve_forever else 0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"WikiSearch reproduction serving on http://{host}:{port}/")

    for path in (
        "/healthz",
        "/search?q=knowledge+base+rdf+sparql&k=2",
        '/search?q=%22gradient+descent%22+translation&k=2',
    ):
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=30
        ) as response:
            payload = json.loads(response.read())
        print(f"\nGET {path} -> {response.status}")
        if "answers" in payload:
            print(f"  keywords: {payload['keywords']}, "
                  f"{len(payload['answers'])} answers, "
                  f"{payload['milliseconds']['total']:.1f} ms")
            top = payload["answers"][0]
            print(f"  top answer: central={top['central_text']!r} "
                  f"depth={top['depth']} score={top['score']:.4f}")
            for node in top["nodes"][:4]:
                marks = f" carries {node['keywords']}" if node["keywords"] else ""
                print(f"    v{node['id']}: {node['text'][:50]!r}{marks}")
        else:
            print(f"  {payload}")

    # Observability endpoints: Prometheus text and the JSON stat view.
    with urllib.request.urlopen(
        f"http://{host}:{port}/metrics", timeout=30
    ) as response:
        metrics_lines = response.read().decode("utf-8").splitlines()
    request_lines = [
        line for line in metrics_lines
        if line.startswith("repro_http_requests_total")
    ]
    print(f"\nGET /metrics -> {len(metrics_lines)} lines, e.g.:")
    for line in request_lines[:3]:
        print(f"  {line}")
    with urllib.request.urlopen(
        f"http://{host}:{port}/statz", timeout=30
    ) as response:
        statz = json.loads(response.read())
    print(f"GET /statz -> requests by endpoint: "
          f"{statz['service']['requests_by_endpoint']}")

    if serve_forever:
        print("\nserving until Ctrl-C ...")
        try:
            thread.join()
        except KeyboardInterrupt:
            pass
    server.shutdown()


if __name__ == "__main__":
    main(serve_forever="--serve" in sys.argv[1:])
