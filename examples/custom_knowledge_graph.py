"""Index and search your own knowledge graph from RDF-style triples.

Shows the full bring-your-own-data path: build a graph from
``(subject, predicate, object)`` triples, persist/reload it in the NPZ
format, and run the engine with per-query parameters. The triples below
sketch a tiny movie knowledge base.

Run:  python examples/custom_knowledge_graph.py
"""

import os
import tempfile

from repro import KeywordSearchEngine, graph_from_triples
from repro.graph.io import load_graph, save_graph

TRIPLES = [
    # people
    ("ridley_scott", "instance of", "human"),
    ("harrison_ford", "instance of", "human"),
    ("sigourney_weaver", "instance of", "human"),
    ("rutger_hauer", "instance of", "human"),
    # films
    ("blade_runner", "instance of", "film"),
    ("alien", "instance of", "film"),
    ("blade_runner", "director", "ridley_scott"),
    ("alien", "director", "ridley_scott"),
    ("blade_runner", "cast member", "harrison_ford"),
    ("blade_runner", "cast member", "rutger_hauer"),
    ("alien", "cast member", "sigourney_weaver"),
    ("blade_runner", "genre", "science_fiction"),
    ("alien", "genre", "science_fiction"),
    ("alien", "genre", "horror_film"),
    ("blade_runner", "based on", "electric_sheep_novel"),
    ("electric_sheep_novel", "author", "philip_k_dick"),
    ("philip_k_dick", "instance of", "human"),
]

NODE_TEXT = {
    "ridley_scott": "Ridley Scott",
    "harrison_ford": "Harrison Ford",
    "sigourney_weaver": "Sigourney Weaver",
    "rutger_hauer": "Rutger Hauer",
    "blade_runner": "Blade Runner",
    "alien": "Alien",
    "science_fiction": "science fiction",
    "horror_film": "horror film",
    "electric_sheep_novel": "Do Androids Dream of Electric Sheep",
    "philip_k_dick": "Philip K. Dick",
    "human": "human",
    "film": "film",
}


def main() -> None:
    graph = graph_from_triples(TRIPLES, node_text=NODE_TEXT)
    print(f"built graph: {graph.n_nodes} nodes, {graph.n_edges} edges, "
          f"{len(graph.predicates)} predicates")

    # Persist and reload — the NPZ round-trip used by the dataset cache.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "movies.npz")
        save_graph(graph, path)
        graph = load_graph(path)
        print(f"round-tripped through {os.path.basename(path)}")

    engine = KeywordSearchEngine(graph)
    for query in ("scott ford runner", "alien weaver fiction",
                  "dick androids scott"):
        result = engine.search(query, k=2, alpha=0.2)
        print(f"\nquery: {query!r} → keywords {result.keywords} "
              f"(dropped {result.dropped_terms or 'none'})")
        for answer in result.answers:
            print(answer.graph.describe(graph.node_text))


if __name__ == "__main__":
    main()
