"""Compare the Central Graph engine against BANKS-I/II and exact GST.

Reproduces, on one query, the paper's two headline comparisons:

* efficiency — the lock-free two-stage engine answers in milliseconds
  while BANKS-II's activation-ordered bidirectional expansion visits a
  large share of the graph;
* answer shape — graph-shaped Central Graph answers versus tree-shaped
  Steiner answers (and, keyword count permitting, the exact optimum from
  the DPBF dynamic program).

Run:  python examples/compare_baselines.py
"""

import time

from repro import KeywordSearchEngine, VectorizedBackend
from repro.baselines import BanksI, BanksII, dpbf_search
from repro.graph.generators import wiki_like_kb

QUERY = "sql rdf knowledge"


def main() -> None:
    graph, _ = wiki_like_kb()
    print(f"graph: {graph.n_nodes} nodes, {graph.n_edges} edges")
    print(f"query: {QUERY!r}\n")

    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())

    start = time.perf_counter()
    result = engine.search(QUERY, k=5)
    engine_ms = (time.perf_counter() - start) * 1e3
    print(f"Central Graph engine: {engine_ms:.1f} ms, "
          f"{len(result.answers)} answers, d={result.depth}")
    best = result.answers[0].graph
    print(best.describe(graph.node_text))
    print()

    for name, cls in (("BANKS-I", BanksI), ("BANKS-II", BanksII)):
        baseline = cls(graph, engine.index)
        start = time.perf_counter()
        baseline_result = baseline.search(QUERY, k=5)
        baseline_ms = (time.perf_counter() - start) * 1e3
        print(f"{name}: {baseline_ms:.1f} ms, "
              f"{len(baseline_result.answers)} answers, "
              f"{baseline_result.nodes_popped} queue pops, "
              f"terminated={baseline_result.terminated}")
        print(baseline_result.answers[0].describe(graph.node_text))
        print()

    # Exact GST oracle (feasible here: only 3 keyword groups).
    pairs = engine.index.query_node_sets(QUERY)
    sets = [nodes for _, nodes in pairs if len(nodes)]
    start = time.perf_counter()
    tree = dpbf_search(graph, sets)
    dpbf_ms = (time.perf_counter() - start) * 1e3
    if tree is not None:
        print(f"Exact GST (DPBF): {dpbf_ms:.1f} ms, optimal cost "
              f"{tree.cost} edge(s), nodes {sorted(tree.nodes)}")
    print("\nTakeaway: the engine is the fastest by a wide margin, and "
          "its graph-shaped answer subsumes several of the baselines' "
          "overlapping trees.")


if __name__ == "__main__":
    main()
